// Single-precision matrix multiplication — the workhorse behind every
// convolution in the neural-network library (via im2col lowering).
//
// The kernel is a packed, register-blocked micro-kernel GEMM: A and B are
// repacked into panel layouts sized for the cache hierarchy and an MR x NR
// register tile is accumulated over K. On machines with AVX2+FMA (compile
// with -DLITHOGAN_NATIVE=ON) an intrinsic micro-kernel is selected at
// runtime; otherwise a portable C++ kernel written for compiler
// auto-vectorization runs. Each variant optionally runs row-block parallel
// over an ExecContext; every row of C is written by exactly one task and
// its K-accumulation order (K-blocks ascending, lanes independent) never
// changes, so results are bit-identical at any thread count (including the
// serial exec == nullptr path). The two micro-kernels may differ from each
// other at rounding level, but the dispatch is fixed per process, so every
// build is individually deterministic.
#pragma once

#include <cstddef>
#include <cstdint>

#include "math/half.hpp"

namespace lithogan::util {
class ExecContext;
}

namespace lithogan::math {

/// C = alpha * A(m x k) * B(k x n) + beta * C(m x n), all row-major, dense.
void gemm(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
          const float* b, float beta, float* c, util::ExecContext* exec = nullptr);

/// C = alpha * A^T(k x m stored as m rows of k? no: A is k x m row-major,
/// used as its transpose) * B(k x n) + beta * C(m x n).
/// Convenient for weight-gradient computation without materializing A^T.
void gemm_at(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
             const float* b, float beta, float* c, util::ExecContext* exec = nullptr);

/// C = alpha * A(m x k) * B^T (B is n x k row-major) + beta * C(m x n).
void gemm_bt(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
             const float* b, float beta, float* c, util::ExecContext* exec = nullptr);

// --- Pre-packed B interface -------------------------------------------------
//
// The packed-B layout is public so producers (nn::im2col_packed) can emit it
// directly, skipping the row-major staging copy: B (k x n logical) is split
// into column tiles of gemm_nr() columns; tile jt occupies the contiguous
// range packed[jt * k * NR, (jt+1) * k * NR) laid out p-major, i.e. element
// (p, jt*NR + j) lives at packed[jt*k*NR + p*NR + j]. Columns beyond n in
// the last tile are zero-filled.

/// Width of one packed-B column tile (NR of the micro-kernel).
std::size_t gemm_nr();

/// Number of floats a packed B of logical shape (k x n) occupies.
std::size_t packed_b_size(std::size_t n, std::size_t k);

/// Packs row-major B (k x n) into the panel layout described above.
void pack_b(std::size_t k, std::size_t n, const float* b, float* packed);

/// C = alpha * A(m x k) * B + beta * C where B is already in packed panel
/// layout (pack_b / im2col_packed). Bit-identical to gemm() on the same
/// operands.
void gemm_packed(std::size_t m, std::size_t n, std::size_t k, float alpha,
                 const float* a, const float* packed_b, float beta, float* c,
                 util::ExecContext* exec = nullptr);

// --- Fused epilogue ---------------------------------------------------------
//
// A forward-only GEMM is almost always followed by a bias broadcast and an
// activation; running those as separate sweeps re-streams C through the
// cache twice. The Epilogue describes that tail so the kernel can apply it
// to each C tile during the final K block's writeback, while the tile is
// still hot. The scalar formulas match nn/activations.cpp exactly, and the
// bias add happens after the full alpha/beta accumulation, so a fused call
// is bit-identical to gemm + bias sweep + activation sweep.

enum class Activation { kIdentity, kRelu, kLeakyRelu, kTanh, kSigmoid };

struct Epilogue {
  const float* bias = nullptr;  ///< broadcast add, or nullptr for none
  bool bias_per_row = true;     ///< bias indexed by C row (conv) vs column (linear)
  Activation act = Activation::kIdentity;
  float slope = 0.2f;  ///< LeakyReLU negative slope
  bool trivial() const { return bias == nullptr && act == Activation::kIdentity; }
};

/// Standalone epilogue sweep over a row-major C (m x n): bias broadcast
/// then activation, with the exact scalar formulas the fused kernels use.
/// Lets non-GEMM writebacks (direct/FFT conv paths) round identically to a
/// fused GEMM producing the same accumulator values.
void apply_epilogue(std::size_t m, std::size_t n, float* c, const Epilogue& epi);

/// gemm_packed with a fused epilogue (A packed on the fly per call — the
/// per-sample activations path, e.g. Linear where A is the input batch).
void gemm_packed(std::size_t m, std::size_t n, std::size_t k, float alpha,
                 const float* a, const float* packed_b, float beta, float* c,
                 const Epilogue& epi, util::ExecContext* exec = nullptr);

// --- Pre-packed A interface -------------------------------------------------
//
// Constant weights (conv / linear parameters at inference time) can be
// packed into the micro-kernel's A-panel layout once instead of per call.
// The layout mirrors what the kernel packs on the fly: logical A(m x k) is
// split into K blocks of up to kBlockK (=256) columns; the block starting
// at column p0 occupies packed[p0 * rt * MR, ...) where rt = ceil(m / MR)
// is the row-tile count. Within a block of depth kc, row tile t is the
// contiguous kc * MR range at t * kc * MR, laid out p-major (element
// (p0 + p, t*MR + r) at offset p*MR + r); rows past m are zero-filled.

/// Height of one packed-A row tile (MR of the micro-kernel).
std::size_t gemm_mr();

/// Number of floats a packed A of logical shape (m x k) occupies (includes
/// a small zeroed tail the thin-tile kernels may load past the last tile).
std::size_t packed_a_size(std::size_t m, std::size_t k);

/// Packs row-major A (m x k) into the panel layout described above.
void pack_a(std::size_t m, std::size_t k, const float* a, float* packed);

/// Packs A stored k x m row-major (used as its transpose, logical m x k) —
/// the gemm_at operand convention (e.g. deconv weights).
void pack_a_t(std::size_t m, std::size_t k, const float* a, float* packed);

/// Packs B stored n x k row-major (used as its transpose, logical k x n)
/// into the packed-B panel layout — the gemm_bt operand convention (e.g.
/// linear weights, stored out x in).
void pack_b_t(std::size_t k, std::size_t n, const float* b, float* packed);

/// C = alpha * A * B(k x n row-major) + beta * C with A pre-packed
/// (pack_a / pack_a_t); B is packed per call on the calling thread.
/// Bit-identical to gemm()/gemm_at() on the same logical operands.
void gemm_prepacked(std::size_t m, std::size_t n, std::size_t k, float alpha,
                    const float* packed_a, const float* b, float beta, float* c,
                    const Epilogue& epi = {}, util::ExecContext* exec = nullptr);

/// Fully pre-packed variant: A from pack_a / pack_a_t, B from
/// pack_b / pack_b_t / im2col_packed. The steady-state inference kernel —
/// no packing work at all on the call path.
void gemm_prepacked_pb(std::size_t m, std::size_t n, std::size_t k, float alpha,
                       const float* packed_a, const float* packed_b, float beta,
                       float* c, const Epilogue& epi = {},
                       util::ExecContext* exec = nullptr);

// --- Reduced-precision prepacked weights ------------------------------------
//
// Inference weights can be packed at fp16/bf16 (half the bytes streamed per
// GEMM) or per-channel symmetric int8 (a quarter). The 16-bit layouts are
// element-for-element identical to the fp32 panel layouts above, just stored
// as 16-bit lanes; kernels widen lanes to fp32 in registers (narrow tiles)
// or inflate one L1-resident panel block at a time (wide tiles) and then
// accumulate in fp32, so a 16-bit GEMM is bit-identical to the fp32 GEMM run
// on roundtripped (fp32 -> 16-bit -> fp32) weights.
//
// The int8 layouts drop the K blocking (row tile t of packed A is the
// contiguous range packed[t * k * MR, ...) p-major; packed B keeps the
// NR-column tile layout): int8 panels are small enough that K-blocking buys
// nothing, and a flat layout keeps the int32 kernel simple. Quantization is
// symmetric absmax: scale = absmax / 127 per weight row (= per output
// channel) or per activation row (= per sample, keeping outputs independent
// of batch composition), with int32 accumulation and a fused
// dequant+bias+activation writeback using the exact Epilogue formulas.

/// 16-bit variants of pack_a / pack_a_t / pack_b_t. Element counts and
/// layouts match packed_a_size / packed_b_size (in elements, not bytes).
/// dtype must be kF16 or kBF16.
void pack_a_h(std::size_t m, std::size_t k, const float* a, Dtype dtype,
              std::uint16_t* packed);
void pack_a_t_h(std::size_t m, std::size_t k, const float* a, Dtype dtype,
                std::uint16_t* packed);
void pack_b_t_h(std::size_t k, std::size_t n, const float* b, Dtype dtype,
                std::uint16_t* packed);

/// gemm_prepacked / gemm_prepacked_pb with a 16-bit packed A (weights).
void gemm_prepacked_h(std::size_t m, std::size_t n, std::size_t k, float alpha,
                      const std::uint16_t* packed_a, Dtype dtype, const float* b,
                      float beta, float* c, const Epilogue& epi = {},
                      util::ExecContext* exec = nullptr);
void gemm_prepacked_pb_h(std::size_t m, std::size_t n, std::size_t k, float alpha,
                         const std::uint16_t* packed_a, Dtype dtype,
                         const float* packed_b, float beta, float* c,
                         const Epilogue& epi = {},
                         util::ExecContext* exec = nullptr);

/// gemm_packed with a 16-bit packed B (the linear-layer convention: A is the
/// activation batch, B the prepacked weights). The packed panels are
/// inflated to fp32 scratch on the calling thread, then the fp32 kernels
/// run — storage is halved but per-call traffic is not, so this is a
/// footprint play for linear layers, not a bandwidth one.
void gemm_packed_bh(std::size_t m, std::size_t n, std::size_t k, float alpha,
                    const float* a, const std::uint16_t* packed_b, Dtype dtype,
                    float beta, float* c, const Epilogue& epi = {},
                    util::ExecContext* exec = nullptr);

/// Quantizes row-major A (m x k) into the flat int8 A-tile layout with one
/// symmetric absmax scale per row, written to row_scales[m] (scale 0 for an
/// all-zero row). packed must hold packed_a_size(m, k) elements. Counts
/// quant.absmax_pass (rows scanned) and quant.saturated (values clamped at
/// +-127) in obs::Registry. Used both for weights (per output channel, at
/// plan compile) and activations (per sample, per call).
void pack_a_s8(std::size_t m, std::size_t k, const float* a, std::int8_t* packed,
               float* row_scales);

/// Quantizes B stored n x k row-major (logical k x n, the pack_b_t
/// convention) into int8 B panels with one scale per logical column (= per
/// output feature), written to col_scales[n]. packed must hold
/// packed_b_size(n, k) elements.
void pack_b_t_s8(std::size_t k, std::size_t n, const float* b, std::int8_t* packed,
                 float* col_scales);

/// C(i,j) = act(a_scales[i] * bscale_j * sum_p A8(i,p) * B8(p,j) + bias),
/// where bscale_j = b_scales ? b_scales[j] : b_scale. A8/B8 are the int8
/// layouts above; accumulation is int32 (exact for k * 127^2 < 2^31), the
/// dequantized value goes through the standard Epilogue formulas. Row
/// parallel over exec at MR boundaries; integer accumulation makes the
/// result thread-count invariant by construction.
void gemm_s8(std::size_t m, std::size_t n, std::size_t k,
             const std::int8_t* packed_a, const float* a_scales,
             const std::int8_t* packed_b, const float* b_scales, float b_scale,
             float* c, const Epilogue& epi = {},
             util::ExecContext* exec = nullptr);

/// Name of the micro-kernel the runtime dispatch selected for this process:
/// "avx512f", "avx2-fma" or "portable". Recorded in bench JSON host
/// metadata so BENCH_*.json trajectories are comparable across machines.
const char* simd_level();

}  // namespace lithogan::math
