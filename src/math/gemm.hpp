// Single-precision matrix multiplication — the workhorse behind every
// convolution in the neural-network library (via im2col lowering).
//
// The kernel is a cache-blocked triple loop in ikj order with the innermost
// loop vectorizable by the compiler. Each variant optionally runs row-block
// parallel over an ExecContext; every row of C is written by exactly one
// task and its k-accumulation order never changes, so results are
// bit-identical at any thread count (including the serial exec == nullptr
// path).
#pragma once

#include <cstddef>

namespace lithogan::util {
class ExecContext;
}

namespace lithogan::math {

/// C = alpha * A(m x k) * B(k x n) + beta * C(m x n), all row-major, dense.
void gemm(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
          const float* b, float beta, float* c, util::ExecContext* exec = nullptr);

/// C = alpha * A^T(k x m stored as m rows of k? no: A is k x m row-major,
/// used as its transpose) * B(k x n) + beta * C(m x n).
/// Convenient for weight-gradient computation without materializing A^T.
void gemm_at(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
             const float* b, float beta, float* c, util::ExecContext* exec = nullptr);

/// C = alpha * A(m x k) * B^T (B is n x k row-major) + beta * C(m x n).
void gemm_bt(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
             const float* b, float beta, float* c, util::ExecContext* exec = nullptr);

}  // namespace lithogan::math
