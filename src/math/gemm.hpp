// Single-precision matrix multiplication — the workhorse behind every
// convolution in the neural-network library (via im2col lowering).
//
// The kernel is a cache-blocked triple loop in ikj order with the innermost
// loop vectorizable by the compiler. It is deliberately dependency-free; on
// the single-core reproduction machine it reaches a few GFLOP/s, enough for
// the lite-scale experiments.
#pragma once

#include <cstddef>

namespace lithogan::math {

/// C = alpha * A(m x k) * B(k x n) + beta * C(m x n), all row-major, dense.
void gemm(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
          const float* b, float beta, float* c);

/// C = alpha * A^T(k x m stored as m rows of k? no: A is k x m row-major,
/// used as its transpose) * B(k x n) + beta * C(m x n).
/// Convenient for weight-gradient computation without materializing A^T.
void gemm_at(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
             const float* b, float beta, float* c);

/// C = alpha * A(m x k) * B^T (B is n x k row-major) + beta * C(m x n).
void gemm_bt(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
             const float* b, float beta, float* c);

}  // namespace lithogan::math
