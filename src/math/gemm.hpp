// Single-precision matrix multiplication — the workhorse behind every
// convolution in the neural-network library (via im2col lowering).
//
// The kernel is a packed, register-blocked micro-kernel GEMM: A and B are
// repacked into panel layouts sized for the cache hierarchy and an MR x NR
// register tile is accumulated over K. On machines with AVX2+FMA (compile
// with -DLITHOGAN_NATIVE=ON) an intrinsic micro-kernel is selected at
// runtime; otherwise a portable C++ kernel written for compiler
// auto-vectorization runs. Each variant optionally runs row-block parallel
// over an ExecContext; every row of C is written by exactly one task and
// its K-accumulation order (K-blocks ascending, lanes independent) never
// changes, so results are bit-identical at any thread count (including the
// serial exec == nullptr path). The two micro-kernels may differ from each
// other at rounding level, but the dispatch is fixed per process, so every
// build is individually deterministic.
#pragma once

#include <cstddef>

namespace lithogan::util {
class ExecContext;
}

namespace lithogan::math {

/// C = alpha * A(m x k) * B(k x n) + beta * C(m x n), all row-major, dense.
void gemm(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
          const float* b, float beta, float* c, util::ExecContext* exec = nullptr);

/// C = alpha * A^T(k x m stored as m rows of k? no: A is k x m row-major,
/// used as its transpose) * B(k x n) + beta * C(m x n).
/// Convenient for weight-gradient computation without materializing A^T.
void gemm_at(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
             const float* b, float beta, float* c, util::ExecContext* exec = nullptr);

/// C = alpha * A(m x k) * B^T (B is n x k row-major) + beta * C(m x n).
void gemm_bt(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
             const float* b, float beta, float* c, util::ExecContext* exec = nullptr);

// --- Pre-packed B interface -------------------------------------------------
//
// The packed-B layout is public so producers (nn::im2col_packed) can emit it
// directly, skipping the row-major staging copy: B (k x n logical) is split
// into column tiles of gemm_nr() columns; tile jt occupies the contiguous
// range packed[jt * k * NR, (jt+1) * k * NR) laid out p-major, i.e. element
// (p, jt*NR + j) lives at packed[jt*k*NR + p*NR + j]. Columns beyond n in
// the last tile are zero-filled.

/// Width of one packed-B column tile (NR of the micro-kernel).
std::size_t gemm_nr();

/// Number of floats a packed B of logical shape (k x n) occupies.
std::size_t packed_b_size(std::size_t n, std::size_t k);

/// Packs row-major B (k x n) into the panel layout described above.
void pack_b(std::size_t k, std::size_t n, const float* b, float* packed);

/// C = alpha * A(m x k) * B + beta * C where B is already in packed panel
/// layout (pack_b / im2col_packed). Bit-identical to gemm() on the same
/// operands.
void gemm_packed(std::size_t m, std::size_t n, std::size_t k, float alpha,
                 const float* a, const float* packed_b, float beta, float* c,
                 util::ExecContext* exec = nullptr);

// --- Fused epilogue ---------------------------------------------------------
//
// A forward-only GEMM is almost always followed by a bias broadcast and an
// activation; running those as separate sweeps re-streams C through the
// cache twice. The Epilogue describes that tail so the kernel can apply it
// to each C tile during the final K block's writeback, while the tile is
// still hot. The scalar formulas match nn/activations.cpp exactly, and the
// bias add happens after the full alpha/beta accumulation, so a fused call
// is bit-identical to gemm + bias sweep + activation sweep.

enum class Activation { kIdentity, kRelu, kLeakyRelu, kTanh, kSigmoid };

struct Epilogue {
  const float* bias = nullptr;  ///< broadcast add, or nullptr for none
  bool bias_per_row = true;     ///< bias indexed by C row (conv) vs column (linear)
  Activation act = Activation::kIdentity;
  float slope = 0.2f;  ///< LeakyReLU negative slope
  bool trivial() const { return bias == nullptr && act == Activation::kIdentity; }
};

/// Standalone epilogue sweep over a row-major C (m x n): bias broadcast
/// then activation, with the exact scalar formulas the fused kernels use.
/// Lets non-GEMM writebacks (direct/FFT conv paths) round identically to a
/// fused GEMM producing the same accumulator values.
void apply_epilogue(std::size_t m, std::size_t n, float* c, const Epilogue& epi);

/// gemm_packed with a fused epilogue (A packed on the fly per call — the
/// per-sample activations path, e.g. Linear where A is the input batch).
void gemm_packed(std::size_t m, std::size_t n, std::size_t k, float alpha,
                 const float* a, const float* packed_b, float beta, float* c,
                 const Epilogue& epi, util::ExecContext* exec = nullptr);

// --- Pre-packed A interface -------------------------------------------------
//
// Constant weights (conv / linear parameters at inference time) can be
// packed into the micro-kernel's A-panel layout once instead of per call.
// The layout mirrors what the kernel packs on the fly: logical A(m x k) is
// split into K blocks of up to kBlockK (=256) columns; the block starting
// at column p0 occupies packed[p0 * rt * MR, ...) where rt = ceil(m / MR)
// is the row-tile count. Within a block of depth kc, row tile t is the
// contiguous kc * MR range at t * kc * MR, laid out p-major (element
// (p0 + p, t*MR + r) at offset p*MR + r); rows past m are zero-filled.

/// Height of one packed-A row tile (MR of the micro-kernel).
std::size_t gemm_mr();

/// Number of floats a packed A of logical shape (m x k) occupies (includes
/// a small zeroed tail the thin-tile kernels may load past the last tile).
std::size_t packed_a_size(std::size_t m, std::size_t k);

/// Packs row-major A (m x k) into the panel layout described above.
void pack_a(std::size_t m, std::size_t k, const float* a, float* packed);

/// Packs A stored k x m row-major (used as its transpose, logical m x k) —
/// the gemm_at operand convention (e.g. deconv weights).
void pack_a_t(std::size_t m, std::size_t k, const float* a, float* packed);

/// Packs B stored n x k row-major (used as its transpose, logical k x n)
/// into the packed-B panel layout — the gemm_bt operand convention (e.g.
/// linear weights, stored out x in).
void pack_b_t(std::size_t k, std::size_t n, const float* b, float* packed);

/// C = alpha * A * B(k x n row-major) + beta * C with A pre-packed
/// (pack_a / pack_a_t); B is packed per call on the calling thread.
/// Bit-identical to gemm()/gemm_at() on the same logical operands.
void gemm_prepacked(std::size_t m, std::size_t n, std::size_t k, float alpha,
                    const float* packed_a, const float* b, float beta, float* c,
                    const Epilogue& epi = {}, util::ExecContext* exec = nullptr);

/// Fully pre-packed variant: A from pack_a / pack_a_t, B from
/// pack_b / pack_b_t / im2col_packed. The steady-state inference kernel —
/// no packing work at all on the call path.
void gemm_prepacked_pb(std::size_t m, std::size_t n, std::size_t k, float alpha,
                       const float* packed_a, const float* packed_b, float beta,
                       float* c, const Epilogue& epi = {},
                       util::ExecContext* exec = nullptr);

/// Name of the micro-kernel the runtime dispatch selected for this process:
/// "avx512f", "avx2-fma" or "portable". Recorded in bench JSON host
/// metadata so BENCH_*.json trajectories are comparable across machines.
const char* simd_level();

}  // namespace lithogan::math
