// Single-precision matrix multiplication — the workhorse behind every
// convolution in the neural-network library (via im2col lowering).
//
// The kernel is a packed, register-blocked micro-kernel GEMM: A and B are
// repacked into panel layouts sized for the cache hierarchy and an MR x NR
// register tile is accumulated over K. On machines with AVX2+FMA (compile
// with -DLITHOGAN_NATIVE=ON) an intrinsic micro-kernel is selected at
// runtime; otherwise a portable C++ kernel written for compiler
// auto-vectorization runs. Each variant optionally runs row-block parallel
// over an ExecContext; every row of C is written by exactly one task and
// its K-accumulation order (K-blocks ascending, lanes independent) never
// changes, so results are bit-identical at any thread count (including the
// serial exec == nullptr path). The two micro-kernels may differ from each
// other at rounding level, but the dispatch is fixed per process, so every
// build is individually deterministic.
#pragma once

#include <cstddef>

namespace lithogan::util {
class ExecContext;
}

namespace lithogan::math {

/// C = alpha * A(m x k) * B(k x n) + beta * C(m x n), all row-major, dense.
void gemm(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
          const float* b, float beta, float* c, util::ExecContext* exec = nullptr);

/// C = alpha * A^T(k x m stored as m rows of k? no: A is k x m row-major,
/// used as its transpose) * B(k x n) + beta * C(m x n).
/// Convenient for weight-gradient computation without materializing A^T.
void gemm_at(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
             const float* b, float beta, float* c, util::ExecContext* exec = nullptr);

/// C = alpha * A(m x k) * B^T (B is n x k row-major) + beta * C(m x n).
void gemm_bt(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
             const float* b, float beta, float* c, util::ExecContext* exec = nullptr);

// --- Pre-packed B interface -------------------------------------------------
//
// The packed-B layout is public so producers (nn::im2col_packed) can emit it
// directly, skipping the row-major staging copy: B (k x n logical) is split
// into column tiles of gemm_nr() columns; tile jt occupies the contiguous
// range packed[jt * k * NR, (jt+1) * k * NR) laid out p-major, i.e. element
// (p, jt*NR + j) lives at packed[jt*k*NR + p*NR + j]. Columns beyond n in
// the last tile are zero-filled.

/// Width of one packed-B column tile (NR of the micro-kernel).
std::size_t gemm_nr();

/// Number of floats a packed B of logical shape (k x n) occupies.
std::size_t packed_b_size(std::size_t n, std::size_t k);

/// Packs row-major B (k x n) into the panel layout described above.
void pack_b(std::size_t k, std::size_t n, const float* b, float* packed);

/// C = alpha * A(m x k) * B + beta * C where B is already in packed panel
/// layout (pack_b / im2col_packed). Bit-identical to gemm() on the same
/// operands.
void gemm_packed(std::size_t m, std::size_t n, std::size_t k, float alpha,
                 const float* a, const float* packed_b, float beta, float* c,
                 util::ExecContext* exec = nullptr);

/// Name of the micro-kernel the runtime dispatch selected for this process:
/// "avx512f", "avx2-fma" or "portable". Recorded in bench JSON host
/// metadata so BENCH_*.json trajectories are comparable across machines.
const char* simd_level();

}  // namespace lithogan::math
