#include "math/gemm.hpp"

#include <algorithm>
#include <cstring>

namespace lithogan::math {

namespace {
constexpr std::size_t kBlockK = 256;
constexpr std::size_t kBlockM = 64;

void scale_c(std::size_t m, std::size_t n, float beta, float* c) {
  if (beta == 1.0f) return;
  if (beta == 0.0f) {
    std::memset(c, 0, m * n * sizeof(float));
    return;
  }
  for (std::size_t i = 0; i < m * n; ++i) c[i] *= beta;
}
}  // namespace

void gemm(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
          const float* b, float beta, float* c) {
  scale_c(m, n, beta, c);
  for (std::size_t i0 = 0; i0 < m; i0 += kBlockM) {
    const std::size_t i1 = std::min(i0 + kBlockM, m);
    for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::size_t p1 = std::min(p0 + kBlockK, k);
      for (std::size_t i = i0; i < i1; ++i) {
        float* crow = c + i * n;
        for (std::size_t p = p0; p < p1; ++p) {
          const float aval = alpha * a[i * k + p];
          if (aval == 0.0f) continue;
          const float* brow = b + p * n;
          for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
        }
      }
    }
  }
}

void gemm_at(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
             const float* b, float beta, float* c) {
  // A is k x m row-major; we compute C[i][j] += A[p][i] * B[p][j].
  scale_c(m, n, beta, c);
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aval = alpha * arow[i];
      if (aval == 0.0f) continue;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

void gemm_bt(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
             const float* b, float beta, float* c) {
  // B is n x k row-major; C[i][j] += A[i][p] * B[j][p] — a dot product, which
  // keeps both streams sequential.
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      // beta == 0 must not read C: it may be uninitialized (NaN propagation).
      crow[j] = (beta == 0.0f) ? alpha * acc : alpha * acc + beta * crow[j];
    }
  }
}

}  // namespace lithogan::math
