#include "math/gemm.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/metrics.hpp"
#include "util/exec_context.hpp"

#if defined(__AVX512F__) || (defined(__AVX2__) && defined(__FMA__))
#include <immintrin.h>
#endif

namespace lithogan::math {

namespace {
// Micro-kernel register tile: MR rows of C by NR columns, chosen per ISA so
// the accumulators fill the register file without spilling. AVX-512 builds
// use an 8 x 32 tile (16 zmm accumulators of the 32 available, FMA-bound at
// 16 FMAs per K step against 10 loads); AVX2 and portable builds use 6 x 16
// (12 ymm accumulators plus two B loads and one A broadcast fit the 16 ymm
// registers).
#if defined(__AVX512F__)
constexpr std::size_t kMr = 8;
constexpr std::size_t kNr = 32;
#else
constexpr std::size_t kMr = 6;
constexpr std::size_t kNr = 16;
#endif
// Cache blocking: a KC-deep slice of B streams through L1 one NR panel at a
// time while an MC x KC block of A stays resident in L2.
constexpr std::size_t kBlockK = 256;
constexpr std::size_t kBlockM = 96;  // multiple of kMr
// Minimum multiply-adds per task; splitting finer than this loses more to
// scheduling than the extra threads recover.
constexpr std::size_t kMinFlopsPerTask = 16 * 1024;
// Minimum C rows per task. Every task streams the whole packed B panel
// (4*n*k bytes), so a task's arithmetic intensity is rows/2 flops per B
// byte — chunks thinner than a few MR tiles turn the GEMM memory-bound on
// B re-reads no matter how many cores join in.
constexpr std::size_t kMinRowsPerTask = 32;
// Workspace float slots used for panel scratch. High numbers keep clear of
// the low slots callers (conv's im2col buffers) use in the same arenas.
constexpr std::size_t kAPanelSlot = 7;
constexpr std::size_t kBPanelSlot = 8;

/// Scratch for the serial path and for B packing on the calling thread.
/// Thread-local so gemm stays safe when invoked concurrently from pool
/// workers that passed exec == nullptr (the batch-parallel conv path).
util::Workspace& local_workspace() {
  thread_local util::Workspace ws;
  return ws;
}

void scale_c(std::size_t m, std::size_t n, float beta, float* c) {
  if (beta == 1.0f) return;
  if (beta == 0.0f) {
    std::memset(c, 0, m * n * sizeof(float));
    return;
  }
  for (std::size_t i = 0; i < m * n; ++i) c[i] *= beta;
}

/// Rows of C per task such that each task does at least kMinFlopsPerTask
/// multiply-adds (`row_cost` = n * k of the variant). Rounded up to a
/// multiple of kMr so chunk boundaries coincide with full register tiles.
std::size_t row_grain(const util::ExecContext* exec, std::size_t m,
                      std::size_t row_cost) {
  const std::size_t min_rows = std::max(
      kMinRowsPerTask,
      kMinFlopsPerTask / std::max<std::size_t>(1, row_cost));
  const std::size_t grain = std::max(min_rows, exec ? exec->grain_for(m) : m);
  return (grain + kMr - 1) / kMr * kMr;
}

// --- Packing ---------------------------------------------------------------

/// Packs logical B(k x n) columns [jt*NR, jt*NR + NR) p-major with zero
/// padding past n. TransB reads B stored n x k row-major (ldb = k).
template <bool TransB>
void pack_b_impl(std::size_t k, std::size_t n, const float* b, std::size_t ldb,
                 float* packed) {
  const std::size_t tiles = (n + kNr - 1) / kNr;
  for (std::size_t jt = 0; jt < tiles; ++jt) {
    const std::size_t j0 = jt * kNr;
    const std::size_t jw = std::min(kNr, n - j0);
    float* dst = packed + jt * k * kNr;
    for (std::size_t p = 0; p < k; ++p) {
      float* d = dst + p * kNr;
      if constexpr (TransB) {
        for (std::size_t j = 0; j < jw; ++j) d[j] = b[(j0 + j) * ldb + p];
      } else {
        const float* src = b + p * ldb + j0;
        for (std::size_t j = 0; j < jw; ++j) d[j] = src[j];
      }
      for (std::size_t j = jw; j < kNr; ++j) d[j] = 0.0f;
    }
  }
}

/// Packs rows [i0, i0 + rows) of logical A(m x k), K range [p0, p0 + kc),
/// into MR-row tiles laid out p-major (element (p, r) of tile t at
/// packed[t*kc*MR + p*MR + r]); rows past the edge are zero-filled. TransA
/// reads A stored k x m row-major (lda = m).
template <bool TransA>
void pack_a_block(std::size_t i0, std::size_t rows, std::size_t p0, std::size_t kc,
                  const float* a, std::size_t lda, float* packed) {
  const std::size_t tiles = (rows + kMr - 1) / kMr;
  for (std::size_t t = 0; t < tiles; ++t) {
    const std::size_t r0 = i0 + t * kMr;
    const std::size_t rh = std::min(kMr, i0 + rows - r0);
    float* dst = packed + t * kc * kMr;
    for (std::size_t p = 0; p < kc; ++p) {
      float* d = dst + p * kMr;
      for (std::size_t r = 0; r < rh; ++r) {
        d[r] = TransA ? a[(p0 + p) * lda + r0 + r] : a[(r0 + r) * lda + p0 + p];
      }
      for (std::size_t r = rh; r < kMr; ++r) d[r] = 0.0f;
    }
  }
}

// --- Micro-kernels ----------------------------------------------------------
//
// acc[MR][NR] = sum_p ap[p*MR + r] * bp[p*NR + j] over the K block. Each
// (r, j) accumulator is one sequential chain over p, so the result is
// independent of how the caller split rows across tasks.

using MicroKernel = void (*)(std::size_t kc, const float* ap, const float* bp,
                             float* acc);

void micro_kernel_portable(std::size_t kc, const float* ap, const float* bp,
                           float* acc) {
  float local[kMr * kNr] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* arow = ap + p * kMr;
    const float* brow = bp + p * kNr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const float av = arow[r];
      float* dst = local + r * kNr;
      for (std::size_t j = 0; j < kNr; ++j) dst[j] += av * brow[j];
    }
  }
  std::memcpy(acc, local, sizeof(local));
}

#if defined(__AVX512F__)
void micro_kernel_avx512(std::size_t kc, const float* ap, const float* bp,
                         float* acc) {
  __m512 c0[kMr];
  __m512 c1[kMr];
  for (std::size_t r = 0; r < kMr; ++r) {
    c0[r] = _mm512_setzero_ps();
    c1[r] = _mm512_setzero_ps();
  }
  for (std::size_t p = 0; p < kc; ++p) {
    const __m512 b0 = _mm512_loadu_ps(bp + p * kNr);
    const __m512 b1 = _mm512_loadu_ps(bp + p * kNr + 16);
    const float* arow = ap + p * kMr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const __m512 av = _mm512_set1_ps(arow[r]);
      c0[r] = _mm512_fmadd_ps(av, b0, c0[r]);
      c1[r] = _mm512_fmadd_ps(av, b1, c1[r]);
    }
  }
  for (std::size_t r = 0; r < kMr; ++r) {
    _mm512_storeu_ps(acc + r * kNr, c0[r]);
    _mm512_storeu_ps(acc + r * kNr + 16, c1[r]);
  }
}
#elif defined(__AVX2__) && defined(__FMA__)
void micro_kernel_avx2(std::size_t kc, const float* ap, const float* bp, float* acc) {
  __m256 c0[kMr];
  __m256 c1[kMr];
  for (std::size_t r = 0; r < kMr; ++r) {
    c0[r] = _mm256_setzero_ps();
    c1[r] = _mm256_setzero_ps();
  }
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp + p * kNr);
    const __m256 b1 = _mm256_loadu_ps(bp + p * kNr + 8);
    const float* arow = ap + p * kMr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const __m256 av = _mm256_broadcast_ss(arow + r);
      c0[r] = _mm256_fmadd_ps(av, b0, c0[r]);
      c1[r] = _mm256_fmadd_ps(av, b1, c1[r]);
    }
  }
  for (std::size_t r = 0; r < kMr; ++r) {
    _mm256_storeu_ps(acc + r * kNr, c0[r]);
    _mm256_storeu_ps(acc + r * kNr + 8, c1[r]);
  }
}
#endif

// --- Thin-tile micro-kernels ------------------------------------------------
//
// The serving path's deconv and deep-encoder GEMMs have C tiles far narrower
// than the register block (N = out_h*out_w drops to 16/4/1 deep in the
// generator), and the wide kernel computes all kNr padded columns anyway —
// up to 15/16 of its FMAs are on zero lanes. These variants compute only the
// live columns. Each (r, j) accumulator stays one sequential FMA chain over
// p in the same order as the wide kernel (the half kernels are literally its
// lower lane half; the narrow kernels vectorize over M with one fused
// multiply-add per p per column), so every C element is bit-identical.

/// Narrow kernels pay off while one vector FMA per live column beats the
/// wide kernel's fixed 2*kMr per K step.
constexpr std::size_t kNarrowCols = 4;

void micro_kernel_narrow_portable_one(std::size_t kc, const float* ap, const float* bp,
                                      float* acc, std::size_t cols) {
  float local[kMr * kNr] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* arow = ap + p * kMr;
    const float* brow = bp + p * kNr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const float av = arow[r];
      float* dst = local + r * kNr;
      for (std::size_t j = 0; j < cols; ++j) dst[j] += av * brow[j];
    }
  }
  for (std::size_t r = 0; r < kMr; ++r) {
    for (std::size_t j = 0; j < cols; ++j) acc[r * kNr + j] = local[r * kNr + j];
  }
}

void micro_kernel_narrow_portable(std::size_t kc, const float* ap, const float* bp,
                                  float* acc, std::size_t cols, std::size_t ntiles) {
  for (std::size_t t = 0; t < ntiles; ++t) {
    micro_kernel_narrow_portable_one(kc, ap + t * kc * kMr, bp, acc + t * kMr * kNr,
                                     cols);
  }
}

void micro_kernel_half_portable(std::size_t kc, const float* ap, const float* bp,
                                float* acc) {
  micro_kernel_narrow_portable_one(kc, ap, bp, acc, kNr / 2);
}

#if defined(__AVX512F__)
/// The wide kernel's lower lane half: c1/b1 dropped, everything else
/// identical — covers tiles of up to kNr/2 live columns.
void micro_kernel_half_avx512(std::size_t kc, const float* ap, const float* bp,
                              float* acc) {
  __m512 c0[kMr];
  for (std::size_t r = 0; r < kMr; ++r) c0[r] = _mm512_setzero_ps();
  for (std::size_t p = 0; p < kc; ++p) {
    const __m512 b0 = _mm512_loadu_ps(bp + p * kNr);
    const float* arow = ap + p * kMr;
    for (std::size_t r = 0; r < kMr; ++r) {
      c0[r] = _mm512_fmadd_ps(_mm512_set1_ps(arow[r]), b0, c0[r]);
    }
  }
  for (std::size_t r = 0; r < kMr; ++r) _mm512_storeu_ps(acc + r * kNr, c0[r]);
}

/// Vectorized over M: the A panel stores kMr (== 8) consecutive rows per K
/// step, so one 256-bit load covers a whole row tile and each live column
/// keeps its own accumulator chain. G consecutive row tiles are interleaved
/// in the same pass over p — a single narrow tile has only COLS accumulator
/// chains and stalls on the FMA latency; interleaving supplies independent
/// chains (and shares the B broadcasts) without reordering any element's
/// own chain, so the result stays bit-identical. COLS and G are
/// compile-time so the loops fully unroll.
template <int COLS, int G>
void micro_kernel_narrow_avx512_cg(std::size_t kc, const float* ap, const float* bp,
                                   float* acc) {
  const std::size_t tstride = kc * kMr;
  __m256 accv[G][COLS];
  for (int g = 0; g < G; ++g) {
    for (int j = 0; j < COLS; ++j) accv[g][j] = _mm256_setzero_ps();
  }
  for (std::size_t p = 0; p < kc; ++p) {
    __m256 bv[COLS];
    for (int j = 0; j < COLS; ++j) bv[j] = _mm256_broadcast_ss(bp + p * kNr + j);
    for (int g = 0; g < G; ++g) {
      const __m256 av = _mm256_loadu_ps(ap + g * tstride + p * kMr);
      for (int j = 0; j < COLS; ++j) {
        accv[g][j] = _mm256_fmadd_ps(av, bv[j], accv[g][j]);
      }
    }
  }
  float tmp[kMr];
  for (int g = 0; g < G; ++g) {
    for (int j = 0; j < COLS; ++j) {
      _mm256_storeu_ps(tmp, accv[g][j]);
      for (std::size_t r = 0; r < kMr; ++r) acc[g * kMr * kNr + r * kNr + j] = tmp[r];
    }
  }
}

template <int COLS>
void micro_kernel_narrow_avx512_c(std::size_t kc, const float* ap, const float* bp,
                                  float* acc, std::size_t ntiles) {
  const std::size_t tstride = kc * kMr;
  std::size_t t = 0;
  while (t < ntiles) {
    const float* at = ap + t * tstride;
    float* ac = acc + t * kMr * kNr;
    const std::size_t g = ntiles - t;
    if (g >= 4) {
      micro_kernel_narrow_avx512_cg<COLS, 4>(kc, at, bp, ac);
      t += 4;
    } else if (g == 3) {
      micro_kernel_narrow_avx512_cg<COLS, 3>(kc, at, bp, ac);
      t += 3;
    } else if (g == 2) {
      micro_kernel_narrow_avx512_cg<COLS, 2>(kc, at, bp, ac);
      t += 2;
    } else {
      micro_kernel_narrow_avx512_cg<COLS, 1>(kc, at, bp, ac);
      t += 1;
    }
  }
}

void micro_kernel_narrow_avx512(std::size_t kc, const float* ap, const float* bp,
                                float* acc, std::size_t cols, std::size_t ntiles) {
  switch (cols) {
    case 1: micro_kernel_narrow_avx512_c<1>(kc, ap, bp, acc, ntiles); break;
    case 2: micro_kernel_narrow_avx512_c<2>(kc, ap, bp, acc, ntiles); break;
    case 3: micro_kernel_narrow_avx512_c<3>(kc, ap, bp, acc, ntiles); break;
    default: micro_kernel_narrow_avx512_c<4>(kc, ap, bp, acc, ntiles); break;
  }
}
#elif defined(__AVX2__) && defined(__FMA__)
void micro_kernel_half_avx2(std::size_t kc, const float* ap, const float* bp,
                            float* acc) {
  __m256 c0[kMr];
  for (std::size_t r = 0; r < kMr; ++r) c0[r] = _mm256_setzero_ps();
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp + p * kNr);
    const float* arow = ap + p * kMr;
    for (std::size_t r = 0; r < kMr; ++r) {
      c0[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + r), b0, c0[r]);
    }
  }
  for (std::size_t r = 0; r < kMr; ++r) _mm256_storeu_ps(acc + r * kNr, c0[r]);
}

/// kMr == 6 here, so the 8-lane row-tile load reads 2 floats past the last K
/// step's rows — packed_a_size reserves that slack and the extra lanes are
/// never stored. As on AVX-512, G row tiles are interleaved per pass over p
/// to feed the FMA pipeline independent chains without touching any
/// element's own chain order; with 16 ymm registers the interleave is
/// capped at 2 tiles once COLS needs more than 2 accumulators each.
template <int COLS, int G>
void micro_kernel_narrow_avx2_cg(std::size_t kc, const float* ap, const float* bp,
                                 float* acc) {
  const std::size_t tstride = kc * kMr;
  __m256 accv[G][COLS];
  for (int g = 0; g < G; ++g) {
    for (int j = 0; j < COLS; ++j) accv[g][j] = _mm256_setzero_ps();
  }
  for (std::size_t p = 0; p < kc; ++p) {
    __m256 bv[COLS];
    for (int j = 0; j < COLS; ++j) bv[j] = _mm256_broadcast_ss(bp + p * kNr + j);
    for (int g = 0; g < G; ++g) {
      const __m256 av = _mm256_loadu_ps(ap + g * tstride + p * kMr);
      for (int j = 0; j < COLS; ++j) {
        accv[g][j] = _mm256_fmadd_ps(av, bv[j], accv[g][j]);
      }
    }
  }
  float tmp[8];
  for (int g = 0; g < G; ++g) {
    for (int j = 0; j < COLS; ++j) {
      _mm256_storeu_ps(tmp, accv[g][j]);
      for (std::size_t r = 0; r < kMr; ++r) acc[g * kMr * kNr + r * kNr + j] = tmp[r];
    }
  }
}

template <int COLS>
void micro_kernel_narrow_avx2_c(std::size_t kc, const float* ap, const float* bp,
                                float* acc, std::size_t ntiles) {
  const std::size_t tstride = kc * kMr;
  std::size_t t = 0;
  while (t < ntiles) {
    const float* at = ap + t * tstride;
    float* ac = acc + t * kMr * kNr;
    const std::size_t g = ntiles - t;
    if constexpr (COLS <= 2) {
      if (g >= 4) {
        micro_kernel_narrow_avx2_cg<COLS, 4>(kc, at, bp, ac);
        t += 4;
        continue;
      }
      if (g == 3) {
        micro_kernel_narrow_avx2_cg<COLS, 3>(kc, at, bp, ac);
        t += 3;
        continue;
      }
    }
    if (g >= 2) {
      micro_kernel_narrow_avx2_cg<COLS, 2>(kc, at, bp, ac);
      t += 2;
    } else {
      micro_kernel_narrow_avx2_cg<COLS, 1>(kc, at, bp, ac);
      t += 1;
    }
  }
}

void micro_kernel_narrow_avx2(std::size_t kc, const float* ap, const float* bp,
                              float* acc, std::size_t cols, std::size_t ntiles) {
  switch (cols) {
    case 1: micro_kernel_narrow_avx2_c<1>(kc, ap, bp, acc, ntiles); break;
    case 2: micro_kernel_narrow_avx2_c<2>(kc, ap, bp, acc, ntiles); break;
    case 3: micro_kernel_narrow_avx2_c<3>(kc, ap, bp, acc, ntiles); break;
    default: micro_kernel_narrow_avx2_c<4>(kc, ap, bp, acc, ntiles); break;
  }
}
#endif

using NarrowMicroKernel = void (*)(std::size_t kc, const float* ap, const float* bp,
                                   float* acc, std::size_t cols, std::size_t ntiles);

/// Runtime dispatch, resolved once per process so every call sees the same
/// kernel. The SIMD bodies are only compiled when the build targets the ISA
/// (LITHOGAN_NATIVE on capable machines); the cpu_supports guard keeps a
/// binary built that way from crashing on a lesser host before main().
MicroKernel select_micro_kernel() {
#if defined(__AVX512F__)
  if (__builtin_cpu_supports("avx512f")) return micro_kernel_avx512;
#elif defined(__AVX2__) && defined(__FMA__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return micro_kernel_avx2;
  }
#endif
  return micro_kernel_portable;
}

MicroKernel select_micro_kernel_half() {
#if defined(__AVX512F__)
  if (__builtin_cpu_supports("avx512f")) return micro_kernel_half_avx512;
#elif defined(__AVX2__) && defined(__FMA__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return micro_kernel_half_avx2;
  }
#endif
  return micro_kernel_half_portable;
}

NarrowMicroKernel select_micro_kernel_narrow() {
#if defined(__AVX512F__)
  if (__builtin_cpu_supports("avx512f")) return micro_kernel_narrow_avx512;
#elif defined(__AVX2__) && defined(__FMA__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return micro_kernel_narrow_avx2;
  }
#endif
  return micro_kernel_narrow_portable;
}

const MicroKernel g_micro_kernel = select_micro_kernel();
const MicroKernel g_micro_kernel_half = select_micro_kernel_half();
const NarrowMicroKernel g_micro_kernel_narrow = select_micro_kernel_narrow();

// --- 16-bit (fp16/bf16) thin-tile micro-kernels -----------------------------
//
// The serving-path GEMMs are bandwidth-bound on the weight panels, so the
// narrow kernels get dedicated 16-bit variants that widen one packed A row
// tile per K step in registers (VCVTPH2PS for fp16, a 16-bit shift for bf16)
// and accumulate in fp32 — half the panel bytes streamed, identical FMA
// chains. Wide/half tiles instead inflate the block's panels to fp32 scratch
// once and reuse the fp32 kernels (see gemm_rows_prepacked_h); widening is
// exact in both formats, so either route is bit-identical to the fp32 kernel
// run on roundtripped weights.

using NarrowMicroKernel16 = void (*)(std::size_t kc, const std::uint16_t* ap,
                                     const float* bp, float* acc, std::size_t cols,
                                     std::size_t ntiles);

template <bool BF16>
void micro_kernel_narrow16_portable_one(std::size_t kc, const std::uint16_t* ap,
                                        const float* bp, float* acc,
                                        std::size_t cols) {
  float local[kMr * kNr] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const std::uint16_t* arow = ap + p * kMr;
    const float* brow = bp + p * kNr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const float av = BF16 ? bf16_to_float(arow[r]) : half_to_float(arow[r]);
      float* dst = local + r * kNr;
      for (std::size_t j = 0; j < cols; ++j) dst[j] += av * brow[j];
    }
  }
  for (std::size_t r = 0; r < kMr; ++r) {
    for (std::size_t j = 0; j < cols; ++j) acc[r * kNr + j] = local[r * kNr + j];
  }
}

template <bool BF16>
void micro_kernel_narrow16_portable(std::size_t kc, const std::uint16_t* ap,
                                    const float* bp, float* acc, std::size_t cols,
                                    std::size_t ntiles) {
  for (std::size_t t = 0; t < ntiles; ++t) {
    micro_kernel_narrow16_portable_one<BF16>(kc, ap + t * kc * kMr, bp,
                                             acc + t * kMr * kNr, cols);
  }
}

#if (defined(__AVX512F__) || (defined(__AVX2__) && defined(__FMA__))) && \
    defined(__F16C__)
/// Widens one packed 16-bit row tile (8 lanes; kMr < 8 overreads into the
/// panel slack, extra lanes never stored — same convention as the fp32
/// narrow kernels).
template <bool BF16>
inline __m256 load_a_tile16(const std::uint16_t* p) {
  const __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  if constexpr (BF16) {
    return _mm256_castsi256_ps(_mm256_slli_epi32(_mm256_cvtepu16_epi32(raw), 16));
  } else {
    return _mm256_cvtph_ps(raw);
  }
}

template <int COLS, int G, bool BF16>
void micro_kernel_narrow16_simd_cg(std::size_t kc, const std::uint16_t* ap,
                                   const float* bp, float* acc) {
  const std::size_t tstride = kc * kMr;
  __m256 accv[G][COLS];
  for (int g = 0; g < G; ++g) {
    for (int j = 0; j < COLS; ++j) accv[g][j] = _mm256_setzero_ps();
  }
  for (std::size_t p = 0; p < kc; ++p) {
    __m256 bv[COLS];
    for (int j = 0; j < COLS; ++j) bv[j] = _mm256_broadcast_ss(bp + p * kNr + j);
    for (int g = 0; g < G; ++g) {
      const __m256 av = load_a_tile16<BF16>(ap + g * tstride + p * kMr);
      for (int j = 0; j < COLS; ++j) {
        accv[g][j] = _mm256_fmadd_ps(av, bv[j], accv[g][j]);
      }
    }
  }
  float tmp[8];
  for (int g = 0; g < G; ++g) {
    for (int j = 0; j < COLS; ++j) {
      _mm256_storeu_ps(tmp, accv[g][j]);
      for (std::size_t r = 0; r < kMr; ++r) acc[g * kMr * kNr + r * kNr + j] = tmp[r];
    }
  }
}

/// Row-tile interleaving as in the fp32 narrow kernels; the conversion adds
/// a port-5 op per tile per K step, so the conservative AVX2-style grouping
/// (cap at 2 once COLS needs more than 2 accumulators) is used on every ISA.
template <int COLS, bool BF16>
void micro_kernel_narrow16_simd_c(std::size_t kc, const std::uint16_t* ap,
                                  const float* bp, float* acc, std::size_t ntiles) {
  const std::size_t tstride = kc * kMr;
  std::size_t t = 0;
  while (t < ntiles) {
    const std::uint16_t* at = ap + t * tstride;
    float* ac = acc + t * kMr * kNr;
    const std::size_t g = ntiles - t;
    if constexpr (COLS <= 2) {
      if (g >= 4) {
        micro_kernel_narrow16_simd_cg<COLS, 4, BF16>(kc, at, bp, ac);
        t += 4;
        continue;
      }
      if (g == 3) {
        micro_kernel_narrow16_simd_cg<COLS, 3, BF16>(kc, at, bp, ac);
        t += 3;
        continue;
      }
    }
    if (g >= 2) {
      micro_kernel_narrow16_simd_cg<COLS, 2, BF16>(kc, at, bp, ac);
      t += 2;
    } else {
      micro_kernel_narrow16_simd_cg<COLS, 1, BF16>(kc, at, bp, ac);
      t += 1;
    }
  }
}

template <bool BF16>
void micro_kernel_narrow16_simd(std::size_t kc, const std::uint16_t* ap,
                                const float* bp, float* acc, std::size_t cols,
                                std::size_t ntiles) {
  switch (cols) {
    case 1: micro_kernel_narrow16_simd_c<1, BF16>(kc, ap, bp, acc, ntiles); break;
    case 2: micro_kernel_narrow16_simd_c<2, BF16>(kc, ap, bp, acc, ntiles); break;
    case 3: micro_kernel_narrow16_simd_c<3, BF16>(kc, ap, bp, acc, ntiles); break;
    default: micro_kernel_narrow16_simd_c<4, BF16>(kc, ap, bp, acc, ntiles); break;
  }
}
#endif

template <bool BF16>
NarrowMicroKernel16 select_micro_kernel_narrow16() {
#if (defined(__AVX512F__) || (defined(__AVX2__) && defined(__FMA__))) && \
    defined(__F16C__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
      __builtin_cpu_supports("f16c")) {
    return micro_kernel_narrow16_simd<BF16>;
  }
#endif
  return micro_kernel_narrow16_portable<BF16>;
}

const NarrowMicroKernel16 g_micro_kernel_narrow_f16 =
    select_micro_kernel_narrow16<false>();
const NarrowMicroKernel16 g_micro_kernel_narrow_bf16 =
    select_micro_kernel_narrow16<true>();

/// Mirrors select_micro_kernel()'s decision as a stable string for bench
/// metadata (see math::simd_level()).
const char* select_simd_level() {
#if defined(__AVX512F__)
  if (__builtin_cpu_supports("avx512f")) return "avx512f";
#elif defined(__AVX2__) && defined(__FMA__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return "avx2-fma";
  }
#endif
  return "portable";
}

/// Scalar epilogue step, formula-for-formula identical to the activation
/// modules in nn/activations.cpp so a fused GEMM is bit-exact against the
/// separate-sweeps reference.
inline float apply_act(float v, Activation act, float slope) {
  switch (act) {
    case Activation::kRelu:
      return v < 0.0f ? 0.0f : v;
    case Activation::kLeakyRelu:
      return v < 0.0f ? v * slope : v;
    case Activation::kTanh:
      return std::tanh(v);
    case Activation::kSigmoid:
      return 1.0f / (1.0f + std::exp(-v));
    case Activation::kIdentity:
      break;
  }
  return v;
}

/// Writes one register tile back to C over its valid extent. The first K
/// block applies alpha/beta (beta == 0 never reads C — it may hold NaN
/// poison); later blocks accumulate. On the last K block the optional
/// epilogue (bias + activation) runs on the freshly final values while the
/// tile is still hot; (row0, col0) locate the tile in C for bias indexing.
void write_tile(const float* acc, std::size_t rows, std::size_t cols, float alpha,
                float beta, bool first_block, bool last_block, float* c,
                std::size_t ldc, const Epilogue* epi, std::size_t row0,
                std::size_t col0) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* crow = c + r * ldc;
    const float* arow = acc + r * kNr;
    if (first_block) {
      if (beta == 0.0f) {
        for (std::size_t j = 0; j < cols; ++j) crow[j] = alpha * arow[j];
      } else {
        for (std::size_t j = 0; j < cols; ++j) {
          crow[j] = alpha * arow[j] + beta * crow[j];
        }
      }
    } else {
      for (std::size_t j = 0; j < cols; ++j) crow[j] += alpha * arow[j];
    }
  }
  if (!last_block || epi == nullptr || epi->trivial()) return;
  for (std::size_t r = 0; r < rows; ++r) {
    float* crow = c + r * ldc;
    if (epi->bias != nullptr && epi->bias_per_row) {
      const float b = epi->bias[row0 + r];
      for (std::size_t j = 0; j < cols; ++j) crow[j] += b;
    } else if (epi->bias != nullptr) {
      const float* b = epi->bias + col0;
      for (std::size_t j = 0; j < cols; ++j) crow[j] += b[j];
    }
    if (epi->act != Activation::kIdentity) {
      for (std::size_t j = 0; j < cols; ++j) {
        crow[j] = apply_act(crow[j], epi->act, epi->slope);
      }
    }
  }
}

/// Epilogue over a full row-major C range — the degenerate-GEMM fallback
/// (k == 0 or alpha == 0) so fused calls stay equivalent to
/// gemm + bias + activation even when no micro-kernel ever runs.
void epilogue_sweep(std::size_t m, std::size_t n, float* c, const Epilogue& epi) {
  if (epi.trivial()) return;
  for (std::size_t i = 0; i < m; ++i) {
    float* row = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      float v = row[j];
      if (epi.bias != nullptr) v += epi.bias_per_row ? epi.bias[i] : epi.bias[j];
      row[j] = apply_act(v, epi.act, epi.slope);
    }
  }
}

/// Packed GEMM over the row range [r0, r1) of C. Per row, K blocks are
/// visited in ascending order and each accumulator is one sequential chain,
/// so any row split reproduces the serial result bit for bit.
template <bool TransA>
void gemm_rows_packed(std::size_t r0, std::size_t r1, std::size_t n, std::size_t k,
                      float alpha, const float* a, std::size_t lda,
                      const float* packed_b, float beta, float* c,
                      util::Workspace& ws, const Epilogue* epi = nullptr) {
  auto& apanel = ws.floats(kAPanelSlot);
  const std::size_t jtiles = (n + kNr - 1) / kNr;
  for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
    const std::size_t kc = std::min(kBlockK, k - p0);
    const bool first_block = p0 == 0;
    const bool last_block = p0 + kc == k;
    for (std::size_t i0 = r0; i0 < r1; i0 += kBlockM) {
      const std::size_t mc = std::min(kBlockM, r1 - i0);
      const std::size_t itiles = (mc + kMr - 1) / kMr;
      apanel.resize(itiles * kc * kMr);
      pack_a_block<TransA>(i0, mc, p0, kc, a, lda, apanel.data());
      for (std::size_t jt = 0; jt < jtiles; ++jt) {
        const float* bp = packed_b + jt * k * kNr + p0 * kNr;
        const std::size_t cols = std::min(kNr, n - jt * kNr);
        for (std::size_t t = 0; t < itiles; ++t) {
          float acc[kMr * kNr];
          g_micro_kernel(kc, apanel.data() + t * kc * kMr, bp, acc);
          const std::size_t row = i0 + t * kMr;
          write_tile(acc, std::min(kMr, r1 - row), cols, alpha, beta, first_block,
                     last_block, c + row * n + jt * kNr, n, epi, row, jt * kNr);
        }
      }
    }
  }
}

/// Same row loop against a pre-packed A (pack_a / pack_a_t). Row tiles are
/// addressed globally — chunk starts are always multiples of kMr (row_grain
/// rounds up), so (i0 / kMr) indexes the packed tile exactly and any row
/// split reproduces the serial result bit for bit.
void gemm_rows_prepacked(std::size_t r0, std::size_t r1, std::size_t m,
                         std::size_t n, std::size_t k, float alpha,
                         const float* packed_a, const float* packed_b, float beta,
                         float* c, const Epilogue* epi) {
  const std::size_t rt = (m + kMr - 1) / kMr;
  const std::size_t jtiles = (n + kNr - 1) / kNr;
  for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
    const std::size_t kc = std::min(kBlockK, k - p0);
    const bool first_block = p0 == 0;
    const bool last_block = p0 + kc == k;
    const float* ablock = packed_a + p0 * rt * kMr;
    for (std::size_t i0 = r0; i0 < r1; i0 += kBlockM) {
      const std::size_t mc = std::min(kBlockM, r1 - i0);
      const std::size_t itiles = (mc + kMr - 1) / kMr;
      const std::size_t t0 = i0 / kMr;
      for (std::size_t jt = 0; jt < jtiles; ++jt) {
        const float* bp = packed_b + jt * k * kNr + p0 * kNr;
        const std::size_t cols = std::min(kNr, n - jt * kNr);
        // Thin C tiles take the narrow kernel (bit-identical, see above) so
        // serving-path GEMMs with N << kNr don't pay for the padded
        // columns. The whole block's row tiles go down in one call — the
        // kernel interleaves them to keep the FMA pipeline full.
        if (cols <= kNarrowCols) {
          float acc[((kBlockM + kMr - 1) / kMr) * kMr * kNr];
          g_micro_kernel_narrow(kc, ablock + t0 * kc * kMr, bp, acc, cols, itiles);
          for (std::size_t t = 0; t < itiles; ++t) {
            const std::size_t row = i0 + t * kMr;
            write_tile(acc + t * kMr * kNr, std::min(kMr, r1 - row), cols, alpha,
                       beta, first_block, last_block, c + row * n + jt * kNr, n, epi,
                       row, jt * kNr);
          }
          continue;
        }
        for (std::size_t t = 0; t < itiles; ++t) {
          float acc[kMr * kNr];
          const float* ap = ablock + (t0 + t) * kc * kMr;
          if (cols <= kNr / 2) {
            g_micro_kernel_half(kc, ap, bp, acc);
          } else {
            g_micro_kernel(kc, ap, bp, acc);
          }
          const std::size_t row = i0 + t * kMr;
          write_tile(acc, std::min(kMr, r1 - row), cols, alpha, beta, first_block,
                     last_block, c + row * n + jt * kNr, n, epi, row, jt * kNr);
        }
      }
    }
  }
}

/// gemm_rows_prepacked against a 16-bit packed A. Narrow tiles run the
/// dedicated 16-bit kernels (in-register widening); wide/half tiles inflate
/// the current block's row tiles into fp32 workspace scratch once and run
/// the fp32 kernels unchanged. Either way every element's FMA chain matches
/// the fp32 path on roundtripped weights bit for bit, at any thread count.
void gemm_rows_prepacked_h(std::size_t r0, std::size_t r1, std::size_t m,
                           std::size_t n, std::size_t k, float alpha,
                           const std::uint16_t* packed_a, Dtype dtype,
                           const float* packed_b, float beta, float* c,
                           const Epilogue* epi, util::Workspace& ws) {
  const NarrowMicroKernel16 narrow16 = dtype == Dtype::kBF16
                                           ? g_micro_kernel_narrow_bf16
                                           : g_micro_kernel_narrow_f16;
  auto& apanel = ws.floats(kAPanelSlot);
  const std::size_t rt = (m + kMr - 1) / kMr;
  const std::size_t jtiles = (n + kNr - 1) / kNr;
  const bool any_wide = n > kNarrowCols;
  for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
    const std::size_t kc = std::min(kBlockK, k - p0);
    const bool first_block = p0 == 0;
    const bool last_block = p0 + kc == k;
    const std::uint16_t* ablock = packed_a + p0 * rt * kMr;
    for (std::size_t i0 = r0; i0 < r1; i0 += kBlockM) {
      const std::size_t mc = std::min(kBlockM, r1 - i0);
      const std::size_t itiles = (mc + kMr - 1) / kMr;
      const std::size_t t0 = i0 / kMr;
      const std::uint16_t* atiles = ablock + t0 * kc * kMr;
      if (any_wide) {
        apanel.resize(itiles * kc * kMr);
        to_float_n(atiles, itiles * kc * kMr, dtype, apanel.data());
      }
      for (std::size_t jt = 0; jt < jtiles; ++jt) {
        const float* bp = packed_b + jt * k * kNr + p0 * kNr;
        const std::size_t cols = std::min(kNr, n - jt * kNr);
        if (cols <= kNarrowCols) {
          float acc[((kBlockM + kMr - 1) / kMr) * kMr * kNr];
          narrow16(kc, atiles, bp, acc, cols, itiles);
          for (std::size_t t = 0; t < itiles; ++t) {
            const std::size_t row = i0 + t * kMr;
            write_tile(acc + t * kMr * kNr, std::min(kMr, r1 - row), cols, alpha,
                       beta, first_block, last_block, c + row * n + jt * kNr, n, epi,
                       row, jt * kNr);
          }
          continue;
        }
        for (std::size_t t = 0; t < itiles; ++t) {
          float acc[kMr * kNr];
          const float* ap = apanel.data() + t * kc * kMr;
          if (cols <= kNr / 2) {
            g_micro_kernel_half(kc, ap, bp, acc);
          } else {
            g_micro_kernel(kc, ap, bp, acc);
          }
          const std::size_t row = i0 + t * kMr;
          write_tile(acc, std::min(kMr, r1 - row), cols, alpha, beta, first_block,
                     last_block, c + row * n + jt * kNr, n, epi, row, jt * kNr);
        }
      }
    }
  }
}

// --- int8 quantized path -----------------------------------------------------
//
// The int8 layouts drop the K blocking (panels are a quarter the fp32 size,
// so an L2-blocked walk buys nothing): packed A row tile t is the contiguous
// k * kMr range at t * k * kMr p-major, packed B keeps the NR column tiles.
// Accumulation is int32 — exact, so the result is invariant to any row split
// by construction — and the dequant (a_scale * b_scale * acc) feeds the
// standard Epilogue formulas at writeback.

void count_quant_rows(std::size_t rows, std::size_t saturated) {
  static obs::Counter& passes =
      obs::Registry::global().counter("quant.absmax_pass");
  static obs::Counter& sat = obs::Registry::global().counter("quant.saturated");
  passes.add(rows);
  if (saturated != 0) sat.add(saturated);
}

void gemm_s8_rows(std::size_t r0, std::size_t r1, std::size_t n, std::size_t k,
                  const std::int8_t* packed_a, const float* a_scales,
                  const std::int8_t* packed_b, const float* b_scales,
                  float b_scale, float* c, const Epilogue* epi) {
  const std::size_t jtiles = (n + kNr - 1) / kNr;
  for (std::size_t i0 = r0; i0 < r1; i0 += kMr) {
    const std::int8_t* at = packed_a + (i0 / kMr) * k * kMr;
    const std::size_t rows = std::min(kMr, r1 - i0);
    for (std::size_t jt = 0; jt < jtiles; ++jt) {
      const std::int8_t* bt = packed_b + jt * k * kNr;
      const std::size_t cols = std::min(kNr, n - jt * kNr);
      std::int32_t acc[kMr * kNr] = {};
      for (std::size_t p = 0; p < k; ++p) {
        const std::int8_t* ar = at + p * kMr;
        const std::int8_t* br = bt + p * kNr;
        for (std::size_t r = 0; r < kMr; ++r) {
          const std::int32_t av = ar[r];
          std::int32_t* dst = acc + r * kNr;
          for (std::size_t j = 0; j < kNr; ++j) dst[j] += av * br[j];
        }
      }
      for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t row = i0 + r;
        const float sa = a_scales[row];
        float* crow = c + row * n + jt * kNr;
        const std::int32_t* arow = acc + r * kNr;
        for (std::size_t j = 0; j < cols; ++j) {
          const float sb = b_scales != nullptr ? b_scales[jt * kNr + j] : b_scale;
          float v = static_cast<float>(arow[j]) * (sa * sb);
          if (epi != nullptr && epi->bias != nullptr) {
            v += epi->bias_per_row ? epi->bias[row] : epi->bias[jt * kNr + j];
          }
          crow[j] = epi != nullptr ? apply_act(v, epi->act, epi->slope) : v;
        }
      }
    }
  }
}

template <bool TransA>
void gemm_driver(std::size_t m, std::size_t n, std::size_t k, float alpha,
                 const float* a, std::size_t lda, const float* packed_b, float beta,
                 float* c, util::ExecContext* exec, const Epilogue* epi = nullptr) {
  if (exec == nullptr) {
    gemm_rows_packed<TransA>(0, m, n, k, alpha, a, lda, packed_b, beta, c,
                             local_workspace(), epi);
    return;
  }
  exec->parallel_for(0, m, row_grain(exec, m, n * k), 2 * m * n * k,
                     [&](std::size_t i0, std::size_t i1, util::Workspace& ws) {
                       gemm_rows_packed<TransA>(i0, i1, n, k, alpha, a, lda, packed_b,
                                                beta, c, ws, epi);
                     });
}

void gemm_driver_prepacked(std::size_t m, std::size_t n, std::size_t k, float alpha,
                           const float* packed_a, const float* packed_b, float beta,
                           float* c, util::ExecContext* exec, const Epilogue* epi) {
  if (exec == nullptr) {
    gemm_rows_prepacked(0, m, m, n, k, alpha, packed_a, packed_b, beta, c, epi);
    return;
  }
  exec->parallel_for(0, m, row_grain(exec, m, n * k), 2 * m * n * k,
                     [&](std::size_t i0, std::size_t i1, util::Workspace&) {
                       gemm_rows_prepacked(i0, i1, m, n, k, alpha, packed_a, packed_b,
                                           beta, c, epi);
                     });
}

void gemm_driver_prepacked_h(std::size_t m, std::size_t n, std::size_t k,
                             float alpha, const std::uint16_t* packed_a,
                             Dtype dtype, const float* packed_b, float beta,
                             float* c, util::ExecContext* exec,
                             const Epilogue* epi) {
  if (exec == nullptr) {
    gemm_rows_prepacked_h(0, m, m, n, k, alpha, packed_a, dtype, packed_b, beta, c,
                          epi, local_workspace());
    return;
  }
  exec->parallel_for(0, m, row_grain(exec, m, n * k), 2 * m * n * k,
                     [&](std::size_t i0, std::size_t i1, util::Workspace& ws) {
                       gemm_rows_prepacked_h(i0, i1, m, n, k, alpha, packed_a, dtype,
                                             packed_b, beta, c, epi, ws);
                     });
}

/// One relaxed add per GEMM call (2*m*n*k multiply-add flops) — the
/// registry's gemm.flops makes "how much math did this run retire" a
/// snapshot read instead of a bench-harness estimate.
void count_gemm_flops(std::size_t m, std::size_t n, std::size_t k) {
  static obs::Counter& flops = obs::Registry::global().counter("gemm.flops");
  flops.add(2 * m * n * k);
}

template <bool TransA, bool TransB>
void gemm_entry(std::size_t m, std::size_t n, std::size_t k, float alpha,
                const float* a, const float* b, float beta, float* c,
                util::ExecContext* exec) {
  if (m == 0 || n == 0) return;
  if (alpha == 0.0f || k == 0) {
    scale_c(m, n, beta, c);
    return;
  }
  count_gemm_flops(m, n, k);
  // B is packed once on the calling thread (O(k*n), negligible next to the
  // O(m*n*k) compute) and read shared by every task.
  auto& bbuf = local_workspace().floats(kBPanelSlot);
  bbuf.resize(packed_b_size(n, k));
  pack_b_impl<TransB>(k, n, b, TransB ? k : n, bbuf.data());
  gemm_driver<TransA>(m, n, k, alpha, a, TransA ? m : k, bbuf.data(), beta, c, exec);
}

/// Packs all of logical A(m x k) into the pre-packed panel layout: K blocks
/// ascending, each holding every row tile at the offsets gemm_rows_prepacked
/// expects. Identical tile contents to what the on-the-fly path packs.
template <bool TransA>
void pack_a_full(std::size_t m, std::size_t k, const float* a, std::size_t lda,
                 float* packed) {
  const std::size_t rt = (m + kMr - 1) / kMr;
  for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
    const std::size_t kc = std::min(kBlockK, k - p0);
    pack_a_block<TransA>(0, m, p0, kc, a, lda, packed + p0 * rt * kMr);
  }
}

inline std::uint16_t narrow16(float v, Dtype dtype) {
  return dtype == Dtype::kBF16 ? float_to_bf16(v) : float_to_half(v);
}

/// pack_a_full narrowed to 16-bit lanes: identical tile layout, each element
/// rounded with the scalar converters (bit-identical to the bulk/F16C path).
template <bool TransA>
void pack_a_full16(std::size_t m, std::size_t k, const float* a, std::size_t lda,
                   Dtype dtype, std::uint16_t* packed) {
  const std::size_t rt = (m + kMr - 1) / kMr;
  const std::size_t tiles = rt;
  for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
    const std::size_t kc = std::min(kBlockK, k - p0);
    std::uint16_t* block = packed + p0 * rt * kMr;
    for (std::size_t t = 0; t < tiles; ++t) {
      const std::size_t r0 = t * kMr;
      const std::size_t rh = std::min(kMr, m - r0);
      std::uint16_t* dst = block + t * kc * kMr;
      for (std::size_t p = 0; p < kc; ++p) {
        std::uint16_t* d = dst + p * kMr;
        for (std::size_t r = 0; r < rh; ++r) {
          const float v =
              TransA ? a[(p0 + p) * lda + r0 + r] : a[(r0 + r) * lda + p0 + p];
          d[r] = narrow16(v, dtype);
        }
        for (std::size_t r = rh; r < kMr; ++r) d[r] = 0;
      }
    }
  }
}

/// pack_b_impl narrowed to 16-bit lanes (TransB variant only — the linear
/// weight convention).
void pack_b_t_impl16(std::size_t k, std::size_t n, const float* b, std::size_t ldb,
                     Dtype dtype, std::uint16_t* packed) {
  const std::size_t tiles = (n + kNr - 1) / kNr;
  for (std::size_t jt = 0; jt < tiles; ++jt) {
    const std::size_t j0 = jt * kNr;
    const std::size_t jw = std::min(kNr, n - j0);
    std::uint16_t* dst = packed + jt * k * kNr;
    for (std::size_t p = 0; p < k; ++p) {
      std::uint16_t* d = dst + p * kNr;
      for (std::size_t j = 0; j < jw; ++j) d[j] = narrow16(b[(j0 + j) * ldb + p], dtype);
      for (std::size_t j = jw; j < kNr; ++j) d[j] = 0;
    }
  }
}

}  // namespace

void apply_epilogue(std::size_t m, std::size_t n, float* c, const Epilogue& epi) {
  epilogue_sweep(m, n, c, epi);
}

std::size_t gemm_nr() { return kNr; }

const char* simd_level() {
  static const char* level = select_simd_level();
  return level;
}

std::size_t packed_b_size(std::size_t n, std::size_t k) {
  return (n + kNr - 1) / kNr * kNr * k;
}

void pack_b(std::size_t k, std::size_t n, const float* b, float* packed) {
  pack_b_impl<false>(k, n, b, n, packed);
}

void gemm(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
          const float* b, float beta, float* c, util::ExecContext* exec) {
  gemm_entry<false, false>(m, n, k, alpha, a, b, beta, c, exec);
}

void gemm_at(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
             const float* b, float beta, float* c, util::ExecContext* exec) {
  // A is k x m row-major, used as its transpose; packing gathers the
  // transposed rows directly, so no A^T is ever materialized.
  gemm_entry<true, false>(m, n, k, alpha, a, b, beta, c, exec);
}

void gemm_bt(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
             const float* b, float beta, float* c, util::ExecContext* exec) {
  // B is n x k row-major; packing gathers its transpose into the panels.
  gemm_entry<false, true>(m, n, k, alpha, a, b, beta, c, exec);
}

void gemm_packed(std::size_t m, std::size_t n, std::size_t k, float alpha,
                 const float* a, const float* packed_b, float beta, float* c,
                 util::ExecContext* exec) {
  if (m == 0 || n == 0) return;
  if (alpha == 0.0f || k == 0) {
    scale_c(m, n, beta, c);
    return;
  }
  count_gemm_flops(m, n, k);
  gemm_driver<false>(m, n, k, alpha, a, k, packed_b, beta, c, exec);
}

void gemm_packed(std::size_t m, std::size_t n, std::size_t k, float alpha,
                 const float* a, const float* packed_b, float beta, float* c,
                 const Epilogue& epi, util::ExecContext* exec) {
  if (m == 0 || n == 0) return;
  if (alpha == 0.0f || k == 0) {
    scale_c(m, n, beta, c);
    epilogue_sweep(m, n, c, epi);
    return;
  }
  count_gemm_flops(m, n, k);
  gemm_driver<false>(m, n, k, alpha, a, k, packed_b, beta, c, exec,
                     epi.trivial() ? nullptr : &epi);
}

std::size_t gemm_mr() { return kMr; }

std::size_t packed_a_size(std::size_t m, std::size_t k) {
  // + 8 floats of tail slack: the narrow micro-kernels load a full 8-lane
  // vector per K step, which on ISAs with kMr < 8 reads past the final row
  // tile (the extra lanes are computed but never stored).
  return (m + kMr - 1) / kMr * kMr * k + 8;
}

void pack_a(std::size_t m, std::size_t k, const float* a, float* packed) {
  pack_a_full<false>(m, k, a, k, packed);
  std::memset(packed + packed_a_size(m, k) - 8, 0, 8 * sizeof(float));
}

void pack_a_t(std::size_t m, std::size_t k, const float* a, float* packed) {
  pack_a_full<true>(m, k, a, m, packed);
  std::memset(packed + packed_a_size(m, k) - 8, 0, 8 * sizeof(float));
}

void pack_b_t(std::size_t k, std::size_t n, const float* b, float* packed) {
  pack_b_impl<true>(k, n, b, k, packed);
}

void gemm_prepacked(std::size_t m, std::size_t n, std::size_t k, float alpha,
                    const float* packed_a, const float* b, float beta, float* c,
                    const Epilogue& epi, util::ExecContext* exec) {
  if (m == 0 || n == 0) return;
  if (alpha == 0.0f || k == 0) {
    scale_c(m, n, beta, c);
    epilogue_sweep(m, n, c, epi);
    return;
  }
  count_gemm_flops(m, n, k);
  auto& bbuf = local_workspace().floats(kBPanelSlot);
  bbuf.resize(packed_b_size(n, k));
  pack_b_impl<false>(k, n, b, n, bbuf.data());
  gemm_driver_prepacked(m, n, k, alpha, packed_a, bbuf.data(), beta, c, exec,
                        epi.trivial() ? nullptr : &epi);
}

void gemm_prepacked_pb(std::size_t m, std::size_t n, std::size_t k, float alpha,
                       const float* packed_a, const float* packed_b, float beta,
                       float* c, const Epilogue& epi, util::ExecContext* exec) {
  if (m == 0 || n == 0) return;
  if (alpha == 0.0f || k == 0) {
    scale_c(m, n, beta, c);
    epilogue_sweep(m, n, c, epi);
    return;
  }
  count_gemm_flops(m, n, k);
  gemm_driver_prepacked(m, n, k, alpha, packed_a, packed_b, beta, c, exec,
                        epi.trivial() ? nullptr : &epi);
}

void pack_a_h(std::size_t m, std::size_t k, const float* a, Dtype dtype,
              std::uint16_t* packed) {
  pack_a_full16<false>(m, k, a, k, dtype, packed);
  std::memset(packed + packed_a_size(m, k) - 8, 0, 8 * sizeof(std::uint16_t));
}

void pack_a_t_h(std::size_t m, std::size_t k, const float* a, Dtype dtype,
                std::uint16_t* packed) {
  pack_a_full16<true>(m, k, a, m, dtype, packed);
  std::memset(packed + packed_a_size(m, k) - 8, 0, 8 * sizeof(std::uint16_t));
}

void pack_b_t_h(std::size_t k, std::size_t n, const float* b, Dtype dtype,
                std::uint16_t* packed) {
  pack_b_t_impl16(k, n, b, k, dtype, packed);
}

void gemm_prepacked_h(std::size_t m, std::size_t n, std::size_t k, float alpha,
                      const std::uint16_t* packed_a, Dtype dtype, const float* b,
                      float beta, float* c, const Epilogue& epi,
                      util::ExecContext* exec) {
  if (m == 0 || n == 0) return;
  if (alpha == 0.0f || k == 0) {
    scale_c(m, n, beta, c);
    epilogue_sweep(m, n, c, epi);
    return;
  }
  count_gemm_flops(m, n, k);
  auto& bbuf = local_workspace().floats(kBPanelSlot);
  bbuf.resize(packed_b_size(n, k));
  pack_b_impl<false>(k, n, b, n, bbuf.data());
  gemm_driver_prepacked_h(m, n, k, alpha, packed_a, dtype, bbuf.data(), beta, c,
                          exec, epi.trivial() ? nullptr : &epi);
}

void gemm_prepacked_pb_h(std::size_t m, std::size_t n, std::size_t k, float alpha,
                         const std::uint16_t* packed_a, Dtype dtype,
                         const float* packed_b, float beta, float* c,
                         const Epilogue& epi, util::ExecContext* exec) {
  if (m == 0 || n == 0) return;
  if (alpha == 0.0f || k == 0) {
    scale_c(m, n, beta, c);
    epilogue_sweep(m, n, c, epi);
    return;
  }
  count_gemm_flops(m, n, k);
  gemm_driver_prepacked_h(m, n, k, alpha, packed_a, dtype, packed_b, beta, c, exec,
                          epi.trivial() ? nullptr : &epi);
}

void gemm_packed_bh(std::size_t m, std::size_t n, std::size_t k, float alpha,
                    const float* a, const std::uint16_t* packed_b, Dtype dtype,
                    float beta, float* c, const Epilogue& epi,
                    util::ExecContext* exec) {
  if (m == 0 || n == 0) return;
  if (alpha == 0.0f || k == 0) {
    scale_c(m, n, beta, c);
    epilogue_sweep(m, n, c, epi);
    return;
  }
  count_gemm_flops(m, n, k);
  // Inflate the 16-bit panels to fp32 on the calling thread; the panel
  // layouts are element-identical so the fp32 kernels run unchanged.
  auto& bbuf = local_workspace().floats(kBPanelSlot);
  bbuf.resize(packed_b_size(n, k));
  to_float_n(packed_b, packed_b_size(n, k), dtype, bbuf.data());
  gemm_driver<false>(m, n, k, alpha, a, k, bbuf.data(), beta, c, exec,
                     epi.trivial() ? nullptr : &epi);
}

void pack_a_s8(std::size_t m, std::size_t k, const float* a, std::int8_t* packed,
               float* row_scales) {
  std::memset(packed, 0, packed_a_size(m, k));
  std::size_t saturated = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = a + i * k;
    float absmax = 0.0f;
    for (std::size_t p = 0; p < k; ++p) {
      absmax = std::max(absmax, std::fabs(row[p]));
    }
    const float inv = absmax > 0.0f ? 127.0f / absmax : 0.0f;
    row_scales[i] = absmax > 0.0f ? absmax / 127.0f : 0.0f;
    std::int8_t* lane = packed + (i / kMr) * k * kMr + (i % kMr);
    for (std::size_t p = 0; p < k; ++p) {
      long q = std::lrintf(row[p] * inv);
      if (q > 127) {
        q = 127;
        ++saturated;
      } else if (q < -127) {
        q = -127;
        ++saturated;
      }
      lane[p * kMr] = static_cast<std::int8_t>(q);
    }
  }
  count_quant_rows(m, saturated);
}

void pack_b_t_s8(std::size_t k, std::size_t n, const float* b, std::int8_t* packed,
                 float* col_scales) {
  std::memset(packed, 0, packed_b_size(n, k));
  std::size_t saturated = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const float* src = b + j * k;  // logical column j = storage row j
    float absmax = 0.0f;
    for (std::size_t p = 0; p < k; ++p) {
      absmax = std::max(absmax, std::fabs(src[p]));
    }
    const float inv = absmax > 0.0f ? 127.0f / absmax : 0.0f;
    col_scales[j] = absmax > 0.0f ? absmax / 127.0f : 0.0f;
    std::int8_t* lane = packed + (j / kNr) * k * kNr + (j % kNr);
    for (std::size_t p = 0; p < k; ++p) {
      long q = std::lrintf(src[p] * inv);
      if (q > 127) {
        q = 127;
        ++saturated;
      } else if (q < -127) {
        q = -127;
        ++saturated;
      }
      lane[p * kNr] = static_cast<std::int8_t>(q);
    }
  }
  count_quant_rows(n, saturated);
}

void gemm_s8(std::size_t m, std::size_t n, std::size_t k,
             const std::int8_t* packed_a, const float* a_scales,
             const std::int8_t* packed_b, const float* b_scales, float b_scale,
             float* c, const Epilogue& epi, util::ExecContext* exec) {
  if (m == 0 || n == 0) return;
  const Epilogue* e = epi.trivial() ? nullptr : &epi;
  if (k == 0) {
    scale_c(m, n, 0.0f, c);
    epilogue_sweep(m, n, c, epi);
    return;
  }
  count_gemm_flops(m, n, k);
  if (exec == nullptr) {
    gemm_s8_rows(0, m, n, k, packed_a, a_scales, packed_b, b_scales, b_scale, c, e);
    return;
  }
  exec->parallel_for(0, m, row_grain(exec, m, n * k), 2 * m * n * k,
                     [&](std::size_t i0, std::size_t i1, util::Workspace&) {
                       gemm_s8_rows(i0, i1, n, k, packed_a, a_scales, packed_b,
                                    b_scales, b_scale, c, e);
                     });
}

}  // namespace lithogan::math
