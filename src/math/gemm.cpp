#include "math/gemm.hpp"

#include <algorithm>
#include <cstring>

#include "util/exec_context.hpp"

namespace lithogan::math {

namespace {
constexpr std::size_t kBlockK = 256;
constexpr std::size_t kBlockM = 64;
// Minimum multiply-adds per task; splitting finer than this loses more to
// scheduling than the extra threads recover.
constexpr std::size_t kMinFlopsPerTask = 16 * 1024;

void scale_c(std::size_t m, std::size_t n, float beta, float* c) {
  if (beta == 1.0f) return;
  if (beta == 0.0f) {
    std::memset(c, 0, m * n * sizeof(float));
    return;
  }
  for (std::size_t i = 0; i < m * n; ++i) c[i] *= beta;
}

/// Rows of C per task such that each task does at least kMinFlopsPerTask
/// multiply-adds (`row_cost` = n * k of the variant).
std::size_t row_grain(const util::ExecContext* exec, std::size_t m,
                      std::size_t row_cost) {
  const std::size_t min_rows =
      std::max<std::size_t>(1, kMinFlopsPerTask / std::max<std::size_t>(1, row_cost));
  return std::max(min_rows, exec ? exec->grain_for(m) : m);
}

/// The seed's cache-blocked ikj kernel over the row range [i0r, i1r). The
/// per-row accumulation order (p ascending within k-blocks) is unchanged,
/// so splitting the row range across tasks cannot change results.
void gemm_rows(std::size_t i0r, std::size_t i1r, std::size_t n, std::size_t k,
               float alpha, const float* a, const float* b, float beta, float* c) {
  scale_c(i1r - i0r, n, beta, c + i0r * n);
  for (std::size_t i0 = i0r; i0 < i1r; i0 += kBlockM) {
    const std::size_t i1 = std::min(i0 + kBlockM, i1r);
    for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::size_t p1 = std::min(p0 + kBlockK, k);
      for (std::size_t i = i0; i < i1; ++i) {
        float* crow = c + i * n;
        for (std::size_t p = p0; p < p1; ++p) {
          const float aval = alpha * a[i * k + p];
          if (aval == 0.0f) continue;
          const float* brow = b + p * n;
          for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
        }
      }
    }
  }
}
}  // namespace

void gemm(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
          const float* b, float beta, float* c, util::ExecContext* exec) {
  if (exec == nullptr) {
    gemm_rows(0, m, n, k, alpha, a, b, beta, c);
    return;
  }
  exec->parallel_for(0, m, row_grain(exec, m, n * k),
                     [&](std::size_t r0, std::size_t r1, util::Workspace&) {
                       gemm_rows(r0, r1, n, k, alpha, a, b, beta, c);
                     });
}

void gemm_at(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
             const float* b, float beta, float* c, util::ExecContext* exec) {
  // A is k x m row-major; we compute C[i][j] += A[p][i] * B[p][j]. Each task
  // owns a row range of C; per row the p-accumulation order matches the
  // seed's p-outer loop, so results are independent of the split.
  auto rows = [&](std::size_t r0, std::size_t r1, util::Workspace&) {
    scale_c(r1 - r0, n, beta, c + r0 * n);
    for (std::size_t p = 0; p < k; ++p) {
      const float* arow = a + p * m;
      const float* brow = b + p * n;
      for (std::size_t i = r0; i < r1; ++i) {
        const float aval = alpha * arow[i];
        if (aval == 0.0f) continue;
        float* crow = c + i * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
      }
    }
  };
  if (exec == nullptr) {
    util::Workspace unused;
    rows(0, m, unused);
    return;
  }
  exec->parallel_for(0, m, row_grain(exec, m, n * k), rows);
}

void gemm_bt(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
             const float* b, float beta, float* c, util::ExecContext* exec) {
  // B is n x k row-major; C[i][j] += A[i][p] * B[j][p] — a dot product, which
  // keeps both streams sequential. Rows of C are independent.
  auto rows = [&](std::size_t r0, std::size_t r1, util::Workspace&) {
    for (std::size_t i = r0; i < r1; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        // beta == 0 must not read C: it may be uninitialized (NaN propagation).
        crow[j] = (beta == 0.0f) ? alpha * acc : alpha * acc + beta * crow[j];
      }
    }
  };
  if (exec == nullptr) {
    util::Workspace unused;
    rows(0, m, unused);
    return;
  }
  exec->parallel_for(0, m, row_grain(exec, m, n * k), rows);
}

}  // namespace lithogan::math
