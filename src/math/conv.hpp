// Unified convolution engine: every convolution in the repo — training
// forward/backward in nn::Conv2d / ConvTranspose2d, the compiled steps of
// nn::InferencePlan, and litho's resist-diffusion blur — routes through a
// ConvPlan resolved from a process-wide plan cache.
//
// A plan is keyed by the full problem geometry (channels, spatial extent,
// kernel/stride/pad/dilation, direction), the packing regime (raw weights
// per call vs prepacked constants) and the thread budget, and selects one
// of three algorithms:
//
//   * kIm2col — im2col-packed GEMM, the historical path: the column matrix
//     is emitted directly in the micro-kernel's packed-B panel layout and
//     one GEMM per sample consumes it;
//   * kDirect — no column materialization. 1x1/stride-1/pad-0 shapes run as
//     a plain GEMM on the input (the column matrix IS the input); other
//     stride-1 shapes run a vectorizable tap loop, profitable when the
//     im2col row count is small;
//   * kFft — spectral convolution on a power-of-two grid through the
//     process-wide FFT plan cache, profitable for large kernels.
//
// Selection is a deterministic analytic cost model over the geometry and
// direction ONLY: two keys differing just in `prepacked` or `threads` get
// the same algorithm, which is what keeps InferencePlan bit-identical to
// the eval-mode module forward and results independent of the thread
// count. Every algorithm is individually bit-identical across thread
// counts under the two-level parallel_for discipline; algorithms differ
// from each other at rounding level (gated by tolerance tests against the
// naive reference in tests/conv_engine_test.cpp).
//
// Knobs (read when a plan is first built, i.e. on a cache miss):
//   LITHOGAN_CONV_ALGO=im2col|direct|fft  force an algorithm for every NCHW
//       conv plan it can execute (keys it cannot fall back to the model);
//   LITHOGAN_CONV_AUTOTUNE=1  replace the cost model with a one-shot timed
//       measurement of each candidate (forward plans); winners are memoized
//       in the plan cache for the process lifetime;
//   LITHOGAN_CONV_CACHE=<path>  persist autotune winners to a text file
//       keyed by math::simd_level() and reuse them in later processes.
//
// Observability: conv.plan_cache.{hit,miss} count plan lookups (mirroring
// fft.plan_cache.*), conv.algo.{im2col,direct,fft} count engine executions
// per algorithm; both appear in the BENCH JSON metrics block.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "math/fft.hpp"
#include "math/gemm.hpp"

namespace lithogan::util {
class ExecContext;
class Workspace;
}  // namespace lithogan::util

namespace lithogan::math {

enum class ConvAlgo : std::uint8_t { kIm2col = 0, kDirect = 1, kFft = 2 };

/// "im2col", "direct" or "fft" — stable strings used by LITHOGAN_CONV_ALGO,
/// the autotune persistence file and plan dumps.
const char* conv_algo_name(ConvAlgo algo);

/// Which linear map of the conv layer a plan executes. Backward-data and
/// backward-weight are separate plans (they have different algorithm
/// candidates); deconv backward computes both gradients from one shared
/// column gather, so it is a single direction.
enum class ConvDir : std::uint8_t {
  kForward = 0,
  kBwdData = 1,
  kBwdWeight = 2,
  kDeconvForward = 3,
  kDeconvBackward = 4,
};

/// Full plan-cache key. For conv directions in_* is the conv input (large
/// grid); for deconv directions in_* is the deconv input (small grid) and
/// output_pad participates. `prepacked` and `threads` size scratch and
/// pick dispatch parameters but are deliberately IGNORED by algorithm
/// selection (see file comment).
struct ConvKey {
  ConvDir dir = ConvDir::kForward;
  std::size_t in_c = 0, in_h = 0, in_w = 0;
  std::size_t out_c = 0;
  std::size_t kernel = 1, stride = 1, pad = 0, dilation = 1, output_pad = 0;
  bool prepacked = false;
  std::size_t threads = 1;
};

/// Pre-packed constant weights in the layout `plan->algo` consumes:
/// micro-kernel A panels for kIm2col / kDirect (a raw row-major copy for
/// the tap-loop direct variant), per-(oc, ic) kernel spectra for kFft.
/// Reduced-precision plans fill panels16 (fp16/bf16 lanes, same layout) or
/// panels8 + per-output-channel scales instead; `dtype` records which
/// storage is live — kF32 when the requested precision fell back (tap-loop
/// direct, FFT, int8 deconv have no reduced execution route).
struct PackedConvWeights {
  std::vector<float> panels;
  std::vector<Complex> spectra;
  std::vector<std::uint16_t> panels16;
  std::vector<std::int8_t> panels8;
  std::vector<float> scales;
  Dtype dtype = Dtype::kF32;

  /// Bytes held by whichever storage is live (panel data + scales).
  std::size_t weight_bytes() const;
};

struct ConvPlan {
  ConvKey key;
  ConvAlgo algo = ConvAlgo::kIm2col;
  bool autotuned = false;  ///< algo came from a timed measurement, not the model

  // Derived geometry: out_h/out_w is the spatial extent of the layer's
  // forward output (conv output for conv directions, deconv output for
  // deconv directions); rows/cols is the im2col matrix shape backing the
  // GEMM lowering (rows = taps, cols = positions).
  std::size_t out_h = 0, out_w = 0;
  std::size_t rows = 0, cols = 0;

  // kFft only: power-of-two spectral grid (>= in + 2*pad per axis).
  std::size_t fft_h = 0, fft_w = 0;

  // kDeconvForward only: col2im gather tables (geometry-only, so they are
  // shared by every execution of this plan). For each output coordinate,
  // the column-matrix offsets of the taps that land on it, ascending in
  // ky (resp. kx) — the order col2im's scatter visits them, so the gather
  // replays the scatter accumulation bit for bit.
  std::vector<std::uint32_t> gather_y, gather_x;
  std::vector<std::uint8_t> gather_ycnt, gather_xcnt;
  std::size_t gather_ty = 0, gather_tx = 0;

  // Analytic cost-model scores (scalar-op estimates; 0 = not a candidate),
  // kept for plan dumps and tests.
  double cost_im2col = 0.0, cost_direct = 0.0, cost_fft = 0.0;
};

/// Plan from the process-wide cache. Deterministic per key: the same key
/// yields the same algorithm on every run (unless LITHOGAN_CONV_AUTOTUNE
/// replaced the model when the plan was first built).
std::shared_ptr<const ConvPlan> conv_plan(const ConvKey& key);

/// Plan with the algorithm forced, bypassing the cost model and the env
/// override (still cached, under a distinct forced entry). Throws if
/// `algo` cannot execute `key` (see conv_algo_candidates).
std::shared_ptr<const ConvPlan> conv_plan(const ConvKey& key, ConvAlgo algo);

/// Algorithms able to execute `key`, ascending in enum order. kIm2col can
/// execute everything; kDirect needs stride 1 (conv directions; backward
/// additionally kernel 1 / pad 0); kFft covers forward only, kernel >= 2,
/// with a cap on spectra memory.
std::vector<ConvAlgo> conv_algo_candidates(const ConvKey& key);

/// Packs `weights` — (out_c, in_c*k*k) row-major for conv plans,
/// (in_c, out_c*k*k) for deconv plans — into the layout `plan.algo` wants.
PackedConvWeights pack_conv_weights(const ConvPlan& plan, const float* weights);

/// Same, with a requested storage dtype. Falls back to kF32 (recorded in the
/// result's `dtype`) for steps with no reduced execution route: tap-loop
/// direct and FFT plans for any reduced dtype, deconv plans for kI8.
PackedConvWeights pack_conv_weights(const ConvPlan& plan, const float* weights,
                                    Dtype dtype);

// --- execution --------------------------------------------------------------
//
// All entry points own the batch loop and the two-level dispatch: with an
// ExecContext and batch > 1 samples fan out one per worker (inner kernels
// serial, per-worker Workspace scratch); otherwise samples run on the
// calling thread with `serial_ws` scratch and the context parallelizes the
// inner kernels. The engine uses float slots 0-1 and complex slots 0-3 of
// whichever workspace a chunk runs with; callers that share `serial_ws`
// with the engine must keep their own live buffers in higher slots.

/// Forward convolution, epilogue fused into the writeback:
/// dst[n] = epi(conv(src[n], W)). Raw `weights` or `packed` (exactly one;
/// the two forms are bit-identical).
void conv2d_forward(const ConvPlan& plan, std::size_t batch, const float* src,
                    const float* weights, const PackedConvWeights* packed,
                    const Epilogue& epi, float* dst, util::ExecContext* exec,
                    util::Workspace& serial_ws);

/// Backward through the forward geometry: writes grad_input plus
/// per-sample weight/bias gradient partials (batch-major: sample n's
/// weight partial at wgrad_partials + n*out_c*rows, its bias partial at
/// bgrad_partials + n*out_c). The caller reduces partials in sample order,
/// which keeps the accumulated gradients independent of scheduling.
void conv2d_backward(const ConvPlan& data_plan, const ConvPlan& weight_plan,
                     std::size_t batch, const float* input, const float* grad_output,
                     const float* weights, float* grad_input, float* wgrad_partials,
                     float* bgrad_partials, util::ExecContext* exec,
                     util::Workspace& serial_ws);

/// Transposed-convolution forward: per sample one GEMM into column form,
/// then the gather writeback with the epilogue applied after each output
/// pixel's full accumulation (bit-identical to scatter + bias sweep).
void deconv2d_forward(const ConvPlan& plan, std::size_t batch, const float* src,
                      const float* weights, const PackedConvWeights* packed,
                      const Epilogue& epi, float* dst, util::ExecContext* exec,
                      util::Workspace& serial_ws);

/// Transposed-convolution backward; partials laid out as conv2d_backward
/// (weight partial stride in_c*rows, bias stride out_c).
void deconv2d_backward(const ConvPlan& plan, std::size_t batch, const float* input,
                       const float* grad_output, const float* weights,
                       float* grad_input, float* wgrad_partials, float* bgrad_partials,
                       util::ExecContext* exec, util::Workspace& serial_ws);

/// Spectral Gaussian blur of a real n x n periodic field (the litho resist
/// diffusion step), in place. The attenuation table exp(-2 pi^2 sigma^2
/// |f|^2) is cached in the same plan cache (keyed on n, sigma_nm and
/// pixel_nm) instead of recomputed per call; the multiply and transform
/// order match the historical litho::diffuse loop exactly, so results are
/// byte-identical to it. Counts as a kFft execution.
void gaussian_blur_2d(std::vector<double>& values, std::size_t n, double sigma_nm,
                      double pixel_nm, util::ExecContext* exec);

// --- shape helpers (shared lowering primitives) -----------------------------

/// Output spatial extent of a convolution along one axis.
/// Requires in + 2*pad >= kernel.
std::size_t conv_out_size(std::size_t in, std::size_t kernel, std::size_t stride,
                          std::size_t pad);

/// Output spatial extent of a transposed convolution along one axis:
/// (in-1)*stride - 2*pad + kernel + output_pad.
std::size_t deconv_out_size(std::size_t in, std::size_t kernel, std::size_t stride,
                            std::size_t pad, std::size_t output_pad);

/// src: (C, H, W) contiguous. col: (C*k*k, Ho*Wo) contiguous, fully
/// written. Out-of-bounds taps read as zero.
void im2col(const float* src, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel, std::size_t stride, std::size_t pad,
            float* col);

/// im2col directly into the packed-B panel layout consumed by
/// gemm_packed (see math/gemm.hpp): the column matrix never exists in
/// row-major form. `packed` must hold packed_b_size(Ho*Wo, C*k*k) floats;
/// ragged tile columns are zero-filled.
void im2col_packed(const float* src, std::size_t channels, std::size_t height,
                   std::size_t width, std::size_t kernel, std::size_t stride,
                   std::size_t pad, float* packed);

/// Adjoint of im2col: scatter-adds col back into dst (C, H, W).
/// dst must be zero-initialized by the caller.
void col2im(const float* col, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel, std::size_t stride, std::size_t pad,
            float* dst);

}  // namespace lithogan::math
