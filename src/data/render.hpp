// Rendering between physical geometry and network images.
//
// Mask side: the 1x1 um post-RET clip becomes an RGB image with the paper's
// color encoding (Sec. 3.1) — green target, red neighbors, blue SRAFs.
// Resist side: the golden contour from the simulator is cropped to the
// crop_window_nm window around the clip center and rasterized; the paper
// doubles the raster resolution relative to nm (128 nm -> 256 px) so one
// pixel of prediction error is ~0.5 nm.
#pragma once

#include <cstdint>
#include <vector>

#include "data/sample.hpp"
#include "geometry/polygon.hpp"
#include "image/connected_components.hpp"
#include "layout/clip.hpp"
#include "litho/optical.hpp"

namespace lithogan::data {

struct RenderConfig {
  std::size_t mask_size_px = 256;    ///< mask RGB resolution
  std::size_t resist_size_px = 256;  ///< resist crop resolution
  double crop_window_nm = 128.0;     ///< golden crop window (Sec. 3.1)
};

/// Renders the post-RET clip to the color-encoded RGB image. Requires OPC
/// to have run (the paper trains on post-RET masks).
image::Image render_mask(const layout::MaskClip& clip, const RenderConfig& config);

/// In-place variant: resizes `out` to 3 x size x size (reusing its buffer)
/// and renders into it. Steady-state callers (the chip pipeline's learned
/// path) render thousands of clips with zero allocations once warm.
void render_mask_into(const layout::MaskClip& clip, const RenderConfig& config,
                      image::Image& out);

/// Result of golden rasterization.
struct GoldenRaster {
  image::Image resist;           ///< crop-window raster (not re-centered)
  image::Image resist_centered;  ///< shifted so the bbox center sits at image center
  geometry::Point center_px;     ///< bbox center in raster pixel coordinates
  double cd_width_nm = 0.0;
  double cd_height_nm = 0.0;
  bool printed = false;          ///< false if the contour was empty
};

/// Rasterizes the golden resist contour (clip-local nm coordinates) of the
/// target contact into the crop window around `clip_center_nm`.
GoldenRaster render_golden(const geometry::Polygon& contour,
                           const geometry::Point& clip_center_nm,
                           const RenderConfig& config);

/// Shifts a predicted (or golden) 1-channel resist image so that its
/// bounding-box center moves from wherever it is to `center_px` — the final
/// adjustment step of LithoGAN (Fig. 5, "post-adjustment").
image::Image recenter_to(const image::Image& resist, const geometry::Point& center_px,
                         float threshold = 0.5f);

/// Reusable scratch for the re-centering pipeline (threshold mask +
/// connected-component labeling). Cycling one scratch through same-sized
/// images makes pattern_center/recenter_into allocation-free in steady
/// state.
struct RecenterScratch {
  std::vector<std::uint8_t> mask;
  image::Labeling labeling;
};

/// recenter_to writing into a caller-owned output (`out` must not alias
/// `resist`), threading all intermediates through `scratch`.
void recenter_into(const image::Image& resist, const geometry::Point& center_px,
                   image::Image& out, RecenterScratch& scratch,
                   float threshold = 0.5f);

/// Bounding-box center (pixel coordinates) of the thresholded pattern in
/// channel 0. Returns the image center when nothing is set.
geometry::Point pattern_center(const image::Image& resist, float threshold = 0.5f);

/// Scratch-reusing variant of pattern_center.
geometry::Point pattern_center(const image::Image& resist, RecenterScratch& scratch,
                               float threshold = 0.5f);

/// Bilinearly resamples a simulation field into the crop window around
/// `center_nm` at resist resolution (continuous values preserved) — how the
/// baseline flow obtains its aerial-image input.
image::Image crop_field(const litho::FieldGrid& field, const geometry::Point& center_nm,
                        const RenderConfig& config);

}  // namespace lithogan::data
