#include "data/statistics.hpp"

#include <cmath>
#include <sstream>

#include "util/strings.hpp"

namespace lithogan::data {

DatasetStatistics compute_statistics(const Dataset& dataset) {
  DatasetStatistics stats;
  stats.sample_count = dataset.size();
  if (dataset.samples.empty()) return stats;
  stats.pixel_nm = dataset.samples.front().resist_pixel_nm;

  std::vector<double> widths;
  std::vector<double> heights;
  std::vector<double> offsets_px;
  std::vector<double> offsets_nm;
  std::vector<double> coverage;
  widths.reserve(dataset.size());
  heights.reserve(dataset.size());
  offsets_px.reserve(dataset.size());
  coverage.reserve(dataset.size());

  for (const Sample& s : dataset.samples) {
    switch (s.array_type) {
      case layout::ArrayType::kIsolated:
        ++stats.isolated_count;
        break;
      case layout::ArrayType::kRow:
        ++stats.row_count;
        break;
      case layout::ArrayType::kGrid:
        ++stats.grid_count;
        break;
    }
    widths.push_back(s.cd_width_nm);
    heights.push_back(s.cd_height_nm);
    const double cx = static_cast<double>(s.resist.width()) / 2.0;
    const double cy = static_cast<double>(s.resist.height()) / 2.0;
    const double off = std::hypot(s.center_px.x - cx, s.center_px.y - cy);
    offsets_px.push_back(off);
    offsets_nm.push_back(off * s.resist_pixel_nm);

    double fg = 0.0;
    for (const float v : s.resist.channel(0)) fg += v >= 0.5f ? 1.0 : 0.0;
    coverage.push_back(fg / static_cast<double>(s.resist.pixel_count()));
  }

  stats.cd_width_nm = math::summarize(widths);
  stats.cd_height_nm = math::summarize(heights);
  stats.center_offset_px = math::summarize(offsets_px);
  stats.center_offset_nm = math::summarize(offsets_nm);
  stats.resist_coverage = math::summarize(coverage);
  return stats;
}

namespace {
std::string summary_line(const char* label, const math::Summary& s, int decimals) {
  using util::format_fixed;
  std::ostringstream oss;
  oss << util::pad_right(label, 22) << "mean " << format_fixed(s.mean, decimals)
      << "  median " << format_fixed(s.median, decimals) << "  min "
      << format_fixed(s.min, decimals) << "  max " << format_fixed(s.max, decimals)
      << "  std " << format_fixed(s.stddev, decimals);
  return oss.str();
}
}  // namespace

std::string format_statistics(const DatasetStatistics& stats) {
  std::ostringstream oss;
  oss << "samples: " << stats.sample_count << " (isolated " << stats.isolated_count
      << ", row " << stats.row_count << ", grid " << stats.grid_count << "), "
      << util::format_fixed(stats.pixel_nm, 2) << " nm/px\n";
  oss << summary_line("CD width (nm)", stats.cd_width_nm, 1) << "\n";
  oss << summary_line("CD height (nm)", stats.cd_height_nm, 1) << "\n";
  oss << summary_line("center offset (px)", stats.center_offset_px, 2) << "\n";
  oss << summary_line("center offset (nm)", stats.center_offset_nm, 2) << "\n";
  oss << summary_line("resist coverage", stats.resist_coverage, 3) << "\n";
  return oss.str();
}

}  // namespace lithogan::data
