#include "data/render.hpp"

#include <cmath>

#include "geometry/rasterize.hpp"
#include "image/connected_components.hpp"
#include "image/ops.hpp"
#include "util/error.hpp"

namespace lithogan::data {

namespace {
// Channel indices of the paper's color encoding.
constexpr std::size_t kRed = 0;    // neighboring contacts after OPC
constexpr std::size_t kGreen = 1;  // target contact after OPC
constexpr std::size_t kBlue = 2;   // SRAFs

geometry::Rect to_pixels(const geometry::Rect& nm_rect, double scale) {
  return {{nm_rect.lo.x * scale, nm_rect.lo.y * scale},
          {nm_rect.hi.x * scale, nm_rect.hi.y * scale}};
}
}  // namespace

void render_mask_into(const layout::MaskClip& clip, const RenderConfig& config,
                      image::Image& out) {
  LITHOGAN_REQUIRE(clip.has_opc(), "render_mask requires a post-OPC clip");
  const std::size_t s = config.mask_size_px;
  out.resize(3, s, s);
  out.fill(0.0f);
  const double scale = static_cast<double>(s) / clip.extent_nm;

  for (const auto& r : clip.neighbors_opc) {
    image::fill_rect(out, kRed, to_pixels(r, scale), 1.0f);
  }
  for (const auto& r : clip.srafs) {
    image::fill_rect(out, kBlue, to_pixels(r, scale), 1.0f);
  }
  image::fill_rect(out, kGreen, to_pixels(clip.target_opc, scale), 1.0f);
}

image::Image render_mask(const layout::MaskClip& clip, const RenderConfig& config) {
  image::Image img;
  render_mask_into(clip, config, img);
  return img;
}

GoldenRaster render_golden(const geometry::Polygon& contour,
                           const geometry::Point& clip_center_nm,
                           const RenderConfig& config) {
  GoldenRaster out;
  const std::size_t s = config.resist_size_px;
  out.resist = image::Image(1, s, s);
  out.resist_centered = image::Image(1, s, s);
  out.center_px = {static_cast<double>(s) / 2.0, static_cast<double>(s) / 2.0};

  if (contour.size() < 3) return out;  // printed stays false

  const double window = config.crop_window_nm;
  const double scale = static_cast<double>(s) / window;
  const geometry::Point origin{clip_center_nm.x - window / 2.0,
                               clip_center_nm.y - window / 2.0};

  const geometry::Polygon in_px =
      contour.translated({-origin.x, -origin.y}).scaled(scale, scale);
  const auto mask = geometry::rasterize({in_px}, s, s);
  out.resist = image::Image::from_mask(mask, s, s);

  const geometry::Rect bbox_px = in_px.bounding_box();
  out.center_px = bbox_px.center();

  const geometry::Rect bbox_nm = contour.bounding_box();
  out.cd_width_nm = bbox_nm.width();
  out.cd_height_nm = bbox_nm.height();
  out.printed = true;

  // Re-centered copy for the CGAN shape objective. Placement errors are
  // routinely sub-pixel, so the shift is fractional (bilinear) and the
  // result re-binarized.
  const double dx = static_cast<double>(s) / 2.0 - out.center_px.x;
  const double dy = static_cast<double>(s) / 2.0 - out.center_px.y;
  const image::Image soft = image::shift_bilinear(out.resist, dx, dy);
  out.resist_centered =
      image::Image::from_mask(soft.to_mask(0, 0.5f), soft.height(), soft.width());
  return out;
}

geometry::Point pattern_center(const image::Image& resist, float threshold) {
  RecenterScratch scratch;
  return pattern_center(resist, scratch, threshold);
}

geometry::Point pattern_center(const image::Image& resist, RecenterScratch& scratch,
                               float threshold) {
  LITHOGAN_REQUIRE(resist.channels() == 1, "pattern_center expects monochrome");
  resist.to_mask_into(0, threshold, scratch.mask);
  image::label_components(scratch.mask, resist.width(), resist.height(),
                          scratch.labeling);
  const auto* blob = image::largest_component(scratch.labeling);
  if (blob == nullptr) {
    return {static_cast<double>(resist.width()) / 2.0,
            static_cast<double>(resist.height()) / 2.0};
  }
  // bbox stores inclusive pixel indices; the geometric center of the covered
  // pixel area is offset by half a pixel.
  return {blob->bbox.center().x + 0.5, blob->bbox.center().y + 0.5};
}

image::Image crop_field(const litho::FieldGrid& field, const geometry::Point& center_nm,
                        const RenderConfig& config) {
  const std::size_t s = config.resist_size_px;
  image::Image out(1, s, s);
  const double window = config.crop_window_nm;
  const geometry::Point origin{center_nm.x - window / 2.0, center_nm.y - window / 2.0};
  const double dx = field.pixel_nm();
  const auto n = static_cast<std::ptrdiff_t>(field.pixels);

  const auto sample = [&](std::ptrdiff_t ix, std::ptrdiff_t iy) {
    ix = std::clamp<std::ptrdiff_t>(ix, 0, n - 1);
    iy = std::clamp<std::ptrdiff_t>(iy, 0, n - 1);
    return field.values[static_cast<std::size_t>(iy) * field.pixels +
                        static_cast<std::size_t>(ix)];
  };

  for (std::size_t y = 0; y < s; ++y) {
    const double ny = origin.y + (static_cast<double>(y) + 0.5) * window /
                                     static_cast<double>(s);
    // Field cell centers sit at (i + 0.5) * dx.
    const double gy = ny / dx - 0.5;
    const auto iy = static_cast<std::ptrdiff_t>(std::floor(gy));
    const double wy = gy - static_cast<double>(iy);
    for (std::size_t x = 0; x < s; ++x) {
      const double nx = origin.x + (static_cast<double>(x) + 0.5) * window /
                                       static_cast<double>(s);
      const double gx = nx / dx - 0.5;
      const auto ix = static_cast<std::ptrdiff_t>(std::floor(gx));
      const double wx = gx - static_cast<double>(ix);
      const double v = (1 - wy) * ((1 - wx) * sample(ix, iy) + wx * sample(ix + 1, iy)) +
                       wy * ((1 - wx) * sample(ix, iy + 1) + wx * sample(ix + 1, iy + 1));
      out.at(0, y, x) = static_cast<float>(v);
    }
  }
  return out;
}

image::Image recenter_to(const image::Image& resist, const geometry::Point& center_px,
                         float threshold) {
  const geometry::Point current = pattern_center(resist, threshold);
  return image::shift_bilinear(resist, center_px.x - current.x, center_px.y - current.y);
}

void recenter_into(const image::Image& resist, const geometry::Point& center_px,
                   image::Image& out, RecenterScratch& scratch, float threshold) {
  const geometry::Point current = pattern_center(resist, scratch, threshold);
  image::shift_bilinear_into(resist, center_px.x - current.x, center_px.y - current.y,
                             out);
}

}  // namespace lithogan::data
