#include "data/augment.hpp"

#include <array>

#include "util/error.hpp"

namespace lithogan::data {

namespace {
constexpr std::array<Dihedral, 8> kAll = {
    Dihedral::kIdentity, Dihedral::kRot90,     Dihedral::kRot180,
    Dihedral::kRot270,   Dihedral::kFlipX,     Dihedral::kFlipY,
    Dihedral::kTranspose, Dihedral::kAntiTranspose};

/// Source pixel (x, y) for destination pixel (dx, dy) under `op` — i.e.
/// the inverse transform, which is what a gather loop needs.
void source_of(Dihedral op, std::size_t n1 /* size-1 */, std::size_t dx, std::size_t dy,
               std::size_t& sx, std::size_t& sy) {
  switch (op) {
    case Dihedral::kIdentity:
      sx = dx;
      sy = dy;
      return;
    case Dihedral::kRot90:  // dest(x,y) = src(n1-y, x) rotated CCW
      sx = n1 - dy;
      sy = dx;
      return;
    case Dihedral::kRot180:
      sx = n1 - dx;
      sy = n1 - dy;
      return;
    case Dihedral::kRot270:
      sx = dy;
      sy = n1 - dx;
      return;
    case Dihedral::kFlipX:
      sx = n1 - dx;
      sy = dy;
      return;
    case Dihedral::kFlipY:
      sx = dx;
      sy = n1 - dy;
      return;
    case Dihedral::kTranspose:
      sx = dy;
      sy = dx;
      return;
    case Dihedral::kAntiTranspose:
      sx = n1 - dy;
      sy = n1 - dx;
      return;
  }
  sx = dx;
  sy = dy;
}
}  // namespace

std::span<const Dihedral> all_dihedrals() { return kAll; }

image::Image transform_image(const image::Image& img, Dihedral op) {
  LITHOGAN_REQUIRE(img.height() == img.width(), "dihedral ops need square images");
  if (op == Dihedral::kIdentity) return img;
  const std::size_t n = img.height();
  image::Image out(img.channels(), n, n);
  for (std::size_t c = 0; c < img.channels(); ++c) {
    for (std::size_t dy = 0; dy < n; ++dy) {
      for (std::size_t dx = 0; dx < n; ++dx) {
        std::size_t sx = 0;
        std::size_t sy = 0;
        source_of(op, n - 1, dx, dy, sx, sy);
        out.at(c, dy, dx) = img.at(c, sy, sx);
      }
    }
  }
  return out;
}

geometry::Point transform_point(const geometry::Point& p, Dihedral op, std::size_t size) {
  const double n = static_cast<double>(size);
  // Forward map of continuous pixel coordinates: mirror of the pixel
  // gather above, expressed on [0, n).
  switch (op) {
    case Dihedral::kIdentity:
      return p;
    case Dihedral::kRot90:
      return {p.y, n - p.x};
    case Dihedral::kRot180:
      return {n - p.x, n - p.y};
    case Dihedral::kRot270:
      return {n - p.y, p.x};
    case Dihedral::kFlipX:
      return {n - p.x, p.y};
    case Dihedral::kFlipY:
      return {p.x, n - p.y};
    case Dihedral::kTranspose:
      return {p.y, p.x};
    case Dihedral::kAntiTranspose:
      return {n - p.y, n - p.x};
  }
  return p;
}

Sample transform_sample(const Sample& sample, Dihedral op) {
  Sample out;
  out.clip_id = sample.clip_id + "+d" +
                std::to_string(static_cast<int>(op));
  out.array_type = sample.array_type;
  out.mask_rgb = transform_image(sample.mask_rgb, op);
  out.resist = transform_image(sample.resist, op);
  out.resist_centered = transform_image(sample.resist_centered, op);
  out.aerial = transform_image(sample.aerial, op);
  out.center_px = transform_point(sample.center_px, op, sample.resist.width());
  // Width/height swap under transposing ops.
  const bool swaps = op == Dihedral::kRot90 || op == Dihedral::kRot270 ||
                     op == Dihedral::kTranspose || op == Dihedral::kAntiTranspose;
  out.cd_width_nm = swaps ? sample.cd_height_nm : sample.cd_width_nm;
  out.cd_height_nm = swaps ? sample.cd_width_nm : sample.cd_height_nm;
  out.resist_pixel_nm = sample.resist_pixel_nm;
  return out;
}

Dataset augment_dataset(const Dataset& dataset, std::span<const Dihedral> ops,
                        util::ExecContext* exec) {
  LITHOGAN_REQUIRE(!ops.empty(), "no augmentation ops given");
  Dataset out;
  out.process_name = dataset.process_name;
  out.render = dataset.render;
  // Pre-sized output: flat index i maps to (sample i/ops, op i%ops), so
  // every transform writes its own slot and scheduling cannot reorder the
  // dataset.
  out.samples.resize(dataset.samples.size() * ops.size());
  util::Workspace serial_ws;
  util::parallel_for(
      exec, serial_ws, 0, out.samples.size(), 1,
      [&](std::size_t i0, std::size_t i1, util::Workspace&) {
        for (std::size_t i = i0; i < i1; ++i) {
          out.samples[i] =
              transform_sample(dataset.samples[i / ops.size()], ops[i % ops.size()]);
        }
      });
  return out;
}

}  // namespace lithogan::data
