// Dataset augmentation: the eight symmetries of the square (dihedral
// group D4) applied consistently to mask image, resist images and center
// coordinates.
//
// Caveat (documented, and why augmentation is off by default in the
// experiment harnesses): a scanner with residual coma is NOT symmetric
// under these transforms — rotating the mask does not exactly rotate the
// printed pattern — so D4 augmentation is an approximation, exactly as it
// is when used on real fab data.
#pragma once

#include <span>

#include "data/dataset.hpp"
#include "util/exec_context.hpp"

namespace lithogan::data {

enum class Dihedral {
  kIdentity,
  kRot90,   ///< 90 degrees counter-clockwise (in image index space)
  kRot180,
  kRot270,
  kFlipX,   ///< mirror about the vertical axis (x -> W-1-x)
  kFlipY,   ///< mirror about the horizontal axis
  kTranspose,      ///< (x,y) -> (y,x)
  kAntiTranspose,  ///< transpose then rotate 180
};

/// All eight elements, identity first.
std::span<const Dihedral> all_dihedrals();

/// Applies `op` to a square image (any channel count).
image::Image transform_image(const image::Image& img, Dihedral op);

/// Maps a point given in pixel coordinates of a size x size image.
geometry::Point transform_point(const geometry::Point& p, Dihedral op, std::size_t size);

/// Transforms every image and the center coordinate of a sample; the
/// clip_id is suffixed with the op index so ids stay unique.
Sample transform_sample(const Sample& sample, Dihedral op);

/// Returns a dataset holding, for each input sample, one copy per listed
/// op (pass all_dihedrals() for 8x augmentation). Identity need not be
/// included in `ops`; pass it explicitly to keep the originals. Output
/// order is always sample-major then op-major; with an ExecContext the
/// (sample, op) pairs fan out across the pool into their fixed slots, so
/// the result is identical at any thread count.
Dataset augment_dataset(const Dataset& dataset, std::span<const Dihedral> ops,
                        util::ExecContext* exec = nullptr);

}  // namespace lithogan::data
