// Assembling network tensors from dataset samples.
//
// Convention (pix2pix): image pixels are mapped from {0,1} to [-1,1] on the
// way into the networks; generator outputs come back through the inverse
// mapping. Center coordinates are normalized to [0,1] across the image.
#pragma once

#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "nn/tensor.hpp"
#include "util/exec_context.hpp"

namespace lithogan::data {

// Batch assembly is sample-parallel with an ExecContext (each sample's rows
// are a disjoint slice of the output tensor, so the copy order cannot
// change the result); null exec keeps the serial loop.

/// Mask images of `indices` as an (N, 3, H, W) tensor in [-1, 1].
nn::Tensor batch_masks(const Dataset& dataset, const std::vector<std::size_t>& indices,
                       util::ExecContext* exec = nullptr);

/// Same, over a contiguous run of samples (the predict_batch path).
nn::Tensor batch_masks(std::span<const Sample> samples,
                       util::ExecContext* exec = nullptr);

/// Gathered variant writing into a caller-owned tensor: `samples` is a span
/// of pointers (the serving scheduler batches non-contiguous requests), and
/// `out` is re-targeted via Tensor::set_batch so cycling one tensor through
/// batches is allocation-free once it has seen its maximum batch. On first
/// use `out` may be empty; its (C, H, W) dims are taken from the first
/// sample.
void batch_masks_into(std::span<const Sample* const> samples, nn::Tensor& out,
                      util::ExecContext* exec = nullptr);

/// Resist targets as (N, 1, H, W) in [-1, 1]. `centered` selects the
/// re-centered variant (CGAN-shape objective) vs. the raw crop (plain CGAN).
nn::Tensor batch_resists(const Dataset& dataset, const std::vector<std::size_t>& indices,
                         bool centered, util::ExecContext* exec = nullptr);

/// Golden centers as (N, 2), normalized: cx/width, cy/height in [0, 1].
nn::Tensor batch_centers(const Dataset& dataset, const std::vector<std::size_t>& indices,
                         util::ExecContext* exec = nullptr);

/// Converts one generated (1, 1, H, W) or (1, H, W) tensor in [-1, 1] back
/// to a {0..1}-valued monochrome image.
image::Image tensor_to_resist_image(const nn::Tensor& tensor);

/// Converts row `n` of a batched (N, 1, H, W) generator output in [-1, 1]
/// to a {0..1}-valued monochrome image (same mapping as the single-sample
/// overload applied to that row).
image::Image tensor_to_resist_image(const nn::Tensor& batch, std::size_t n);

/// Row-extracting variant writing into a caller-owned image (resized to
/// 1 x H x W; reuse across same-sized rows is allocation-free).
void tensor_to_resist_image_into(const nn::Tensor& batch, std::size_t n,
                                 image::Image& out);

/// Converts an image in {0..1} to a single-sample (1, C, H, W) tensor in
/// [-1, 1] (inference-time input).
nn::Tensor image_to_tensor(const image::Image& img);

/// Denormalizes a (N, 2) center prediction row back to pixel coordinates.
geometry::Point denormalize_center(const nn::Tensor& centers, std::size_t row,
                                   std::size_t height, std::size_t width);

}  // namespace lithogan::data
