// Dataset construction and persistence.
//
// DatasetBuilder runs the complete substitute for the paper's data pipeline
// (Sec. 4): synthesize clip -> SRAF insertion -> OPC -> rigorous simulation
// -> golden crop, producing paired images. Datasets serialize to a compact
// binary file so expensive simulation runs once per configuration.
#pragma once

#include <string>
#include <vector>

#include "data/render.hpp"
#include "data/sample.hpp"
#include "layout/generator.hpp"
#include "layout/opc.hpp"
#include "layout/sraf.hpp"
#include "litho/simulator.hpp"
#include "util/rng.hpp"

namespace lithogan::data {

struct Dataset {
  std::string process_name;
  RenderConfig render;
  std::vector<Sample> samples;

  std::size_t size() const { return samples.size(); }
};

/// Index-based train/test partition.
struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Random split with `train_fraction` of the samples in the training set
/// (the paper uses 75/25, Sec. 4).
Split split_dataset(const Dataset& dataset, double train_fraction, util::Rng& rng);

struct BuildConfig {
  std::size_t clip_count = 120;
  RenderConfig render;
  layout::GeneratorConfig generator;
  layout::SrafConfig sraf;
  layout::OpcConfig opc;
  bool calibrate = true;  ///< auto-calibrate the simulator threshold first
  /// Clips whose target fails to print, or prints outside the CD sanity
  /// band (bridged with a neighbor / collapsed), are re-drawn up to this
  /// many times — mirroring how unusable clips are discarded during data
  /// prep (a bridged contact is a catastrophic hotspot, not a sample).
  std::size_t max_retries = 6;
  double cd_band_lo = 0.55;  ///< accepted golden CD, fraction of drawn CD
  double cd_band_hi = 1.55;
};

class DatasetBuilder {
 public:
  DatasetBuilder(const litho::ProcessConfig& process, BuildConfig config, util::Rng rng);

  /// Generates the full dataset. Deterministic for a fixed seed: every clip
  /// draws from its own RNG stream (seeded by clip index, never by thread),
  /// so with a ProcessConfig::exec the clips fan out across the pool —
  /// each worker piping them through its own serial-inner Simulator clone —
  /// and the result is byte-identical to the serial build at any thread
  /// count.
  Dataset build();

  /// Builds one sample from an externally supplied clip (used by tests and
  /// by the examples that visualize individual stages). Returns false when
  /// the target fails to print.
  bool build_sample(layout::MaskClip& clip, Sample& out);

  litho::Simulator& simulator() { return sim_; }

 private:
  /// build_sample against an explicit simulator (a per-worker clone in the
  /// clip-parallel build).
  bool build_sample(layout::MaskClip& clip, Sample& out, litho::Simulator& sim);
  /// Synthesizes clip `index` (with retries) from its own RNG stream and
  /// simulates it through `sim`. Scheduling-independent by construction.
  Sample build_clip(std::size_t index, litho::Simulator& sim);

  BuildConfig config_;
  litho::Simulator sim_;
  layout::SrafInserter sraf_;
  layout::OpcEngine opc_;
  std::uint64_t base_seed_ = 0;  ///< root of the per-clip RNG streams
};

// Binary dataset persistence. Pixels are stored as bytes (images here are
// binary-valued), so a 256px dataset of 1000 samples is ~250 MB -> stored
// in ~0.2 GB; lite datasets are a few MB.
void save_dataset(const Dataset& dataset, const std::string& path);
Dataset load_dataset(const std::string& path);

}  // namespace lithogan::data
