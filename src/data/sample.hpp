// One training/evaluation sample: the paired images of Sec. 3.1 plus the
// golden center used by the dual-learning scheme of Sec. 3.3.
#pragma once

#include <string>

#include "geometry/primitives.hpp"
#include "image/image.hpp"
#include "layout/clip.hpp"

namespace lithogan::data {

struct Sample {
  std::string clip_id;
  layout::ArrayType array_type = layout::ArrayType::kIsolated;

  /// Post-RET mask clip rendered to RGB (green = target after OPC, red =
  /// neighbors after OPC, blue = SRAFs), values in {0, 1}.
  image::Image mask_rgb;

  /// Golden resist pattern of the target contact: monochrome crop of the
  /// crop_window_nm x crop_window_nm window centered on the clip center,
  /// values in {0, 1}. NOT re-centered — this is what LithoGAN must output.
  image::Image resist;

  /// The same pattern re-centered at the image center: the CGAN-shape
  /// training target of the dual-learning scheme.
  image::Image resist_centered;

  /// Aerial-image crop over the same window (continuous values, open field
  /// = 1). LithoGAN never sees this; it feeds the Ref.[12]-style baseline
  /// flow, which needs optical simulation output.
  image::Image aerial;

  /// Golden center: the resist bounding-box center in resist-image pixel
  /// coordinates (the CNN regression target).
  geometry::Point center_px;

  /// Golden printed critical dimensions (nm), for reporting.
  double cd_width_nm = 0.0;
  double cd_height_nm = 0.0;

  /// Physical size of one resist-image pixel (nm) — converts pixel metrics
  /// (EDE, center error) to nanometres.
  double resist_pixel_nm = 0.5;
};

}  // namespace lithogan::data
