// Dataset quality statistics: the sanity report a data engineer reads
// before pouring GPU-hours into training — CD distribution, printed-center
// spread (the dual-learning signal), per-array-type counts, foreground
// coverage.
#pragma once

#include <string>

#include "data/dataset.hpp"
#include "math/statistics.hpp"

namespace lithogan::data {

struct DatasetStatistics {
  std::size_t sample_count = 0;
  std::size_t isolated_count = 0;
  std::size_t row_count = 0;
  std::size_t grid_count = 0;

  math::Summary cd_width_nm;
  math::Summary cd_height_nm;
  /// Distance of each golden center from the image center, in pixels and nm.
  math::Summary center_offset_px;
  math::Summary center_offset_nm;
  /// Foreground (resist) pixel fraction per sample.
  math::Summary resist_coverage;

  double pixel_nm = 0.0;
};

/// Computes the statistics over every sample.
DatasetStatistics compute_statistics(const Dataset& dataset);

/// Multi-line human-readable report.
std::string format_statistics(const DatasetStatistics& stats);

}  // namespace lithogan::data
