#include "data/dataset.hpp"

#include <atomic>
#include <fstream>
#include <memory>

#include "geometry/marching_squares.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/exec_context.hpp"
#include "util/fileio.hpp"
#include "util/logging.hpp"

namespace lithogan::data {

Split split_dataset(const Dataset& dataset, double train_fraction, util::Rng& rng) {
  LITHOGAN_REQUIRE(train_fraction > 0.0 && train_fraction < 1.0, "train fraction");
  const auto perm = rng.permutation(dataset.size());
  const auto train_count =
      static_cast<std::size_t>(static_cast<double>(dataset.size()) * train_fraction);
  Split split;
  split.train.assign(perm.begin(), perm.begin() + static_cast<std::ptrdiff_t>(train_count));
  split.test.assign(perm.begin() + static_cast<std::ptrdiff_t>(train_count), perm.end());
  return split;
}

DatasetBuilder::DatasetBuilder(const litho::ProcessConfig& process, BuildConfig config,
                               util::Rng rng)
    : config_(config),
      sim_(process),
      sraf_(process, config.sraf),
      opc_(config.opc) {
  // Root of the per-clip RNG streams: clip i draws from Rng(base_seed_, i),
  // so its geometry (and its retry sequence) never depends on which worker
  // simulates it or on any other clip.
  const std::uint64_t hi = rng();
  base_seed_ = (hi << 32) | rng();
  if (config_.calibrate) sim_.calibrate_dose();
}

bool DatasetBuilder::build_sample(layout::MaskClip& clip, Sample& out) {
  return build_sample(clip, out, sim_);
}

bool DatasetBuilder::build_sample(layout::MaskClip& clip, Sample& out,
                                  litho::Simulator& sim) {
  sraf_.insert(clip);
  opc_.run_model_based(clip, sim);

  const auto result = sim.run(clip.all_openings());
  const auto contour = geometry::contour_at(result.contours, clip.center());
  const auto golden = render_golden(contour, clip.center(), config_.render);
  if (!golden.printed) return false;

  // Sanity band on the printed CD: outside it the pattern bridged with a
  // neighbor or nearly collapsed, which is a hotspot, not a usable sample.
  const double drawn = sim.process().contact_size_nm;
  const double lo = config_.cd_band_lo * drawn;
  const double hi = config_.cd_band_hi * drawn;
  if (golden.cd_width_nm < lo || golden.cd_width_nm > hi || golden.cd_height_nm < lo ||
      golden.cd_height_nm > hi) {
    return false;
  }

  out.clip_id = clip.id;
  out.array_type = clip.array_type;
  out.mask_rgb = render_mask(clip, config_.render);
  out.aerial = crop_field(result.aerial, clip.center(), config_.render);
  out.resist = golden.resist;
  out.resist_centered = golden.resist_centered;
  out.center_px = golden.center_px;
  out.cd_width_nm = golden.cd_width_nm;
  out.cd_height_nm = golden.cd_height_nm;
  out.resist_pixel_nm =
      config_.render.crop_window_nm / static_cast<double>(config_.render.resist_size_px);
  return true;
}

Sample DatasetBuilder::build_clip(std::size_t index, litho::Simulator& sim) {
  constexpr layout::ArrayType kCycle[3] = {layout::ArrayType::kIsolated,
                                           layout::ArrayType::kRow,
                                           layout::ArrayType::kGrid};
  // The clip's own generator over its own RNG stream; retries advance the
  // stream, never a shared generator. Each clip also owns a disjoint id
  // block so ids stay unique whatever attempt eventually prints.
  layout::ClipGenerator generator(sim.process(), config_.generator,
                                  util::Rng(base_seed_, index));
  generator.set_next_id(index * (config_.max_retries + 1));

  Sample sample;
  bool ok = false;
  for (std::size_t attempt = 0; attempt <= config_.max_retries && !ok; ++attempt) {
    layout::MaskClip clip = generator.generate(kCycle[index % 3]);
    ok = build_sample(clip, sample, sim);
  }
  LITHOGAN_REQUIRE(ok, "target contact repeatedly failed to print; "
                       "process is miscalibrated");
  return sample;
}

Dataset DatasetBuilder::build() {
  Dataset dataset;
  dataset.process_name = sim_.process().name;
  dataset.render = config_.render;
  dataset.samples.resize(config_.clip_count);

  util::ExecContext* exec = sim_.process().exec;
  if (exec == nullptr || config_.clip_count <= 1) {
    for (std::size_t i = 0; i < config_.clip_count; ++i) {
      const obs::Span span("data.clip");
      dataset.samples[i] = build_clip(i, sim_);
      if ((i + 1) % 50 == 0) {
        util::log_info() << dataset.process_name << " dataset: " << (i + 1) << "/"
                         << config_.clip_count << " clips";
      }
    }
    return dataset;
  }

  // Coarse outer level of the two-level parallel model: whole clips fan out
  // across the pool. Each worker lazily builds one serial-inner Simulator
  // clone of the calibrated sim_ (SRAF/OPC engines are stateless and
  // shared); per-clip RNG streams make every sample byte-identical to the
  // serial loop above regardless of scheduling.
  litho::ProcessConfig serial_process = sim_.process();
  serial_process.exec = nullptr;
  std::vector<std::unique_ptr<litho::Simulator>> sims(exec->threads());
  std::atomic<std::size_t> built{0};
  exec->pool().parallel_for(
      0, config_.clip_count, 1,
      [&](std::size_t b, std::size_t e, std::size_t worker) {
        auto& sim = sims[worker];
        if (!sim) sim = std::make_unique<litho::Simulator>(serial_process);
        for (std::size_t i = b; i < e; ++i) {
          const obs::Span span("data.clip");
          dataset.samples[i] = build_clip(i, *sim);
          const std::size_t done = built.fetch_add(1, std::memory_order_relaxed) + 1;
          if (done % 50 == 0) {
            util::log_info() << dataset.process_name << " dataset: " << done << "/"
                             << config_.clip_count << " clips";
          }
        }
      });
  return dataset;
}

namespace {

constexpr std::uint32_t kMagic = 0x4c474453u;  // "LGDS"
constexpr std::uint32_t kVersion = 1;

// Binary-valued images (masks, resist patterns) pack to one byte per pixel;
// continuous images (aerial crops) keep full float32 precision.
void write_image(std::ostream& os, const image::Image& img, bool binary) {
  util::write_u32(os, static_cast<std::uint32_t>(img.channels()));
  util::write_u32(os, static_cast<std::uint32_t>(img.height()));
  util::write_u32(os, static_cast<std::uint32_t>(img.width()));
  util::write_u32(os, binary ? 1u : 0u);
  if (binary) {
    std::vector<std::uint8_t> bytes(img.data().size());
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      bytes[i] = img.data()[i] >= 0.5f ? 1 : 0;
    }
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  } else {
    util::write_f32_array(os, img.data().data(), img.data().size());
  }
  if (!os) throw util::IoError("dataset write failed");
}

image::Image read_image(std::istream& is) {
  const std::size_t c = util::read_u32(is);
  const std::size_t h = util::read_u32(is);
  const std::size_t w = util::read_u32(is);
  const std::uint32_t binary = util::read_u32(is);
  LITHOGAN_REQUIRE(c <= 4 && h <= 4096 && w <= 4096, "implausible image dims");
  image::Image img(c, h, w);
  if (binary != 0) {
    std::vector<std::uint8_t> bytes(c * h * w);
    is.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!is) throw util::FormatError("dataset read failed (truncated image)");
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      img.data()[i] = bytes[i] ? 1.0f : 0.0f;
    }
  } else {
    util::read_f32_array(is, img.data().data(), img.data().size());
  }
  return img;
}

}  // namespace

void save_dataset(const Dataset& dataset, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw util::IoError("cannot open for writing: " + path);
  util::write_u32(os, kMagic);
  util::write_u32(os, kVersion);
  util::write_string(os, dataset.process_name);
  util::write_u64(os, dataset.render.mask_size_px);
  util::write_u64(os, dataset.render.resist_size_px);
  util::write_f64(os, dataset.render.crop_window_nm);
  util::write_u64(os, dataset.samples.size());
  for (const Sample& s : dataset.samples) {
    util::write_string(os, s.clip_id);
    util::write_u32(os, static_cast<std::uint32_t>(s.array_type));
    write_image(os, s.mask_rgb, /*binary=*/true);
    write_image(os, s.resist, /*binary=*/true);
    write_image(os, s.resist_centered, /*binary=*/true);
    write_image(os, s.aerial, /*binary=*/false);
    util::write_f64(os, s.center_px.x);
    util::write_f64(os, s.center_px.y);
    util::write_f64(os, s.cd_width_nm);
    util::write_f64(os, s.cd_height_nm);
    util::write_f64(os, s.resist_pixel_nm);
  }
  if (!os) throw util::IoError("dataset write failed: " + path);
}

Dataset load_dataset(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw util::IoError("cannot open for reading: " + path);
  if (util::read_u32(is) != kMagic) throw util::FormatError("not a dataset file: " + path);
  if (util::read_u32(is) != kVersion) throw util::FormatError("unsupported dataset version");
  Dataset dataset;
  dataset.process_name = util::read_string(is);
  dataset.render.mask_size_px = util::read_u64(is);
  dataset.render.resist_size_px = util::read_u64(is);
  dataset.render.crop_window_nm = util::read_f64(is);
  const std::uint64_t count = util::read_u64(is);
  // Guard before the resize: a corrupt count must not trigger a huge
  // allocation (each Sample is hundreds of bytes even before its images).
  if (count > 200000) throw util::FormatError("implausible sample count");
  dataset.samples.resize(count);
  for (Sample& s : dataset.samples) {
    s.clip_id = util::read_string(is);
    s.array_type = static_cast<layout::ArrayType>(util::read_u32(is));
    s.mask_rgb = read_image(is);
    s.resist = read_image(is);
    s.resist_centered = read_image(is);
    s.aerial = read_image(is);
    s.center_px.x = util::read_f64(is);
    s.center_px.y = util::read_f64(is);
    s.cd_width_nm = util::read_f64(is);
    s.cd_height_nm = util::read_f64(is);
    s.resist_pixel_nm = util::read_f64(is);
  }
  return dataset;
}

}  // namespace lithogan::data
