#include "data/dataset.hpp"

#include <fstream>

#include "geometry/marching_squares.hpp"
#include "util/error.hpp"
#include "util/fileio.hpp"
#include "util/logging.hpp"

namespace lithogan::data {

Split split_dataset(const Dataset& dataset, double train_fraction, util::Rng& rng) {
  LITHOGAN_REQUIRE(train_fraction > 0.0 && train_fraction < 1.0, "train fraction");
  const auto perm = rng.permutation(dataset.size());
  const auto train_count =
      static_cast<std::size_t>(static_cast<double>(dataset.size()) * train_fraction);
  Split split;
  split.train.assign(perm.begin(), perm.begin() + static_cast<std::ptrdiff_t>(train_count));
  split.test.assign(perm.begin() + static_cast<std::ptrdiff_t>(train_count), perm.end());
  return split;
}

DatasetBuilder::DatasetBuilder(const litho::ProcessConfig& process, BuildConfig config,
                               util::Rng rng)
    : config_(config),
      sim_(process),
      generator_(process, config.generator, rng.split()),
      sraf_(process, config.sraf),
      opc_(config.opc) {
  if (config_.calibrate) sim_.calibrate_dose();
}

bool DatasetBuilder::build_sample(layout::MaskClip& clip, Sample& out) {
  sraf_.insert(clip);
  opc_.run_model_based(clip, sim_);

  const auto result = sim_.run(clip.all_openings());
  const auto contour = geometry::contour_at(result.contours, clip.center());
  const auto golden = render_golden(contour, clip.center(), config_.render);
  if (!golden.printed) return false;

  // Sanity band on the printed CD: outside it the pattern bridged with a
  // neighbor or nearly collapsed, which is a hotspot, not a usable sample.
  const double drawn = sim_.process().contact_size_nm;
  const double lo = config_.cd_band_lo * drawn;
  const double hi = config_.cd_band_hi * drawn;
  if (golden.cd_width_nm < lo || golden.cd_width_nm > hi || golden.cd_height_nm < lo ||
      golden.cd_height_nm > hi) {
    return false;
  }

  out.clip_id = clip.id;
  out.array_type = clip.array_type;
  out.mask_rgb = render_mask(clip, config_.render);
  out.aerial = crop_field(result.aerial, clip.center(), config_.render);
  out.resist = golden.resist;
  out.resist_centered = golden.resist_centered;
  out.center_px = golden.center_px;
  out.cd_width_nm = golden.cd_width_nm;
  out.cd_height_nm = golden.cd_height_nm;
  out.resist_pixel_nm =
      config_.render.crop_window_nm / static_cast<double>(config_.render.resist_size_px);
  return true;
}

Dataset DatasetBuilder::build() {
  Dataset dataset;
  dataset.process_name = sim_.process().name;
  dataset.render = config_.render;
  dataset.samples.reserve(config_.clip_count);

  constexpr layout::ArrayType kCycle[3] = {layout::ArrayType::kIsolated,
                                           layout::ArrayType::kRow,
                                           layout::ArrayType::kGrid};
  for (std::size_t i = 0; i < config_.clip_count; ++i) {
    Sample sample;
    bool ok = false;
    for (std::size_t attempt = 0; attempt <= config_.max_retries && !ok; ++attempt) {
      layout::MaskClip clip = generator_.generate(kCycle[i % 3]);
      ok = build_sample(clip, sample);
    }
    LITHOGAN_REQUIRE(ok, "target contact repeatedly failed to print; "
                         "process is miscalibrated");
    dataset.samples.push_back(std::move(sample));
    if ((i + 1) % 50 == 0) {
      util::log_info() << dataset.process_name << " dataset: " << (i + 1) << "/"
                       << config_.clip_count << " clips";
    }
  }
  return dataset;
}

namespace {

constexpr std::uint32_t kMagic = 0x4c474453u;  // "LGDS"
constexpr std::uint32_t kVersion = 1;

// Binary-valued images (masks, resist patterns) pack to one byte per pixel;
// continuous images (aerial crops) keep full float32 precision.
void write_image(std::ostream& os, const image::Image& img, bool binary) {
  util::write_u32(os, static_cast<std::uint32_t>(img.channels()));
  util::write_u32(os, static_cast<std::uint32_t>(img.height()));
  util::write_u32(os, static_cast<std::uint32_t>(img.width()));
  util::write_u32(os, binary ? 1u : 0u);
  if (binary) {
    std::vector<std::uint8_t> bytes(img.data().size());
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      bytes[i] = img.data()[i] >= 0.5f ? 1 : 0;
    }
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  } else {
    util::write_f32_array(os, img.data().data(), img.data().size());
  }
  if (!os) throw util::IoError("dataset write failed");
}

image::Image read_image(std::istream& is) {
  const std::size_t c = util::read_u32(is);
  const std::size_t h = util::read_u32(is);
  const std::size_t w = util::read_u32(is);
  const std::uint32_t binary = util::read_u32(is);
  LITHOGAN_REQUIRE(c <= 4 && h <= 4096 && w <= 4096, "implausible image dims");
  image::Image img(c, h, w);
  if (binary != 0) {
    std::vector<std::uint8_t> bytes(c * h * w);
    is.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!is) throw util::FormatError("dataset read failed (truncated image)");
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      img.data()[i] = bytes[i] ? 1.0f : 0.0f;
    }
  } else {
    util::read_f32_array(is, img.data().data(), img.data().size());
  }
  return img;
}

}  // namespace

void save_dataset(const Dataset& dataset, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw util::IoError("cannot open for writing: " + path);
  util::write_u32(os, kMagic);
  util::write_u32(os, kVersion);
  util::write_string(os, dataset.process_name);
  util::write_u64(os, dataset.render.mask_size_px);
  util::write_u64(os, dataset.render.resist_size_px);
  util::write_f64(os, dataset.render.crop_window_nm);
  util::write_u64(os, dataset.samples.size());
  for (const Sample& s : dataset.samples) {
    util::write_string(os, s.clip_id);
    util::write_u32(os, static_cast<std::uint32_t>(s.array_type));
    write_image(os, s.mask_rgb, /*binary=*/true);
    write_image(os, s.resist, /*binary=*/true);
    write_image(os, s.resist_centered, /*binary=*/true);
    write_image(os, s.aerial, /*binary=*/false);
    util::write_f64(os, s.center_px.x);
    util::write_f64(os, s.center_px.y);
    util::write_f64(os, s.cd_width_nm);
    util::write_f64(os, s.cd_height_nm);
    util::write_f64(os, s.resist_pixel_nm);
  }
  if (!os) throw util::IoError("dataset write failed: " + path);
}

Dataset load_dataset(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw util::IoError("cannot open for reading: " + path);
  if (util::read_u32(is) != kMagic) throw util::FormatError("not a dataset file: " + path);
  if (util::read_u32(is) != kVersion) throw util::FormatError("unsupported dataset version");
  Dataset dataset;
  dataset.process_name = util::read_string(is);
  dataset.render.mask_size_px = util::read_u64(is);
  dataset.render.resist_size_px = util::read_u64(is);
  dataset.render.crop_window_nm = util::read_f64(is);
  const std::uint64_t count = util::read_u64(is);
  // Guard before the resize: a corrupt count must not trigger a huge
  // allocation (each Sample is hundreds of bytes even before its images).
  if (count > 200000) throw util::FormatError("implausible sample count");
  dataset.samples.resize(count);
  for (Sample& s : dataset.samples) {
    s.clip_id = util::read_string(is);
    s.array_type = static_cast<layout::ArrayType>(util::read_u32(is));
    s.mask_rgb = read_image(is);
    s.resist = read_image(is);
    s.resist_centered = read_image(is);
    s.aerial = read_image(is);
    s.center_px.x = util::read_f64(is);
    s.center_px.y = util::read_f64(is);
    s.cd_width_nm = util::read_f64(is);
    s.cd_height_nm = util::read_f64(is);
    s.resist_pixel_nm = util::read_f64(is);
  }
  return dataset;
}

}  // namespace lithogan::data
