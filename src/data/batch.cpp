#include "data/batch.hpp"

#include "util/error.hpp"

namespace lithogan::data {

namespace {
void copy_scaled(const image::Image& img, float* dst) {
  const auto src = img.data();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i] * 2.0f - 1.0f;
}
}  // namespace

nn::Tensor batch_masks(const Dataset& dataset, const std::vector<std::size_t>& indices,
                       util::ExecContext* exec) {
  LITHOGAN_REQUIRE(!indices.empty(), "empty batch");
  const auto& first = dataset.samples.at(indices.front()).mask_rgb;
  nn::Tensor out({indices.size(), first.channels(), first.height(), first.width()});
  const std::size_t stride = first.data().size();
  util::Workspace serial_ws;
  util::parallel_for(exec, serial_ws, 0, indices.size(), 1,
                     indices.size() * stride * 2,
                     [&](std::size_t n0, std::size_t n1, util::Workspace&) {
                       for (std::size_t n = n0; n < n1; ++n) {
                         const auto& img = dataset.samples.at(indices[n]).mask_rgb;
                         LITHOGAN_REQUIRE(img.data().size() == stride,
                                          "inhomogeneous dataset images");
                         copy_scaled(img, out.raw() + n * stride);
                       }
                     });
  return out;
}

nn::Tensor batch_masks(std::span<const Sample> samples, util::ExecContext* exec) {
  LITHOGAN_REQUIRE(!samples.empty(), "empty batch");
  const auto& first = samples.front().mask_rgb;
  nn::Tensor out({samples.size(), first.channels(), first.height(), first.width()});
  const std::size_t stride = first.data().size();
  util::Workspace serial_ws;
  util::parallel_for(exec, serial_ws, 0, samples.size(), 1, samples.size() * stride * 2,
                     [&](std::size_t n0, std::size_t n1, util::Workspace&) {
                       for (std::size_t n = n0; n < n1; ++n) {
                         const auto& img = samples[n].mask_rgb;
                         LITHOGAN_REQUIRE(img.data().size() == stride,
                                          "inhomogeneous dataset images");
                         copy_scaled(img, out.raw() + n * stride);
                       }
                     });
  return out;
}

void batch_masks_into(std::span<const Sample* const> samples, nn::Tensor& out,
                      util::ExecContext* exec) {
  LITHOGAN_REQUIRE(!samples.empty(), "empty batch");
  const auto& first = samples.front()->mask_rgb;
  if (out.rank() != 4 || out.dim(1) != first.channels() ||
      out.dim(2) != first.height() || out.dim(3) != first.width()) {
    out = nn::Tensor({samples.size(), first.channels(), first.height(), first.width()});
  } else {
    out.set_batch(samples.size());
  }
  const std::size_t stride = first.data().size();
  const auto copy_range = [&](std::size_t n0, std::size_t n1) {
    for (std::size_t n = n0; n < n1; ++n) {
      const auto& img = samples[n]->mask_rgb;
      LITHOGAN_REQUIRE(img.data().size() == stride, "inhomogeneous dataset images");
      copy_scaled(img, out.raw() + n * stride);
    }
  };
  if (exec == nullptr) {
    // Direct serial loop: no Workspace is constructed (its deques allocate
    // on construction), keeping the serving dispatch path allocation-free.
    copy_range(0, samples.size());
  } else {
    exec->parallel_for(0, samples.size(), 1, samples.size() * stride * 2,
                       [&](std::size_t n0, std::size_t n1, util::Workspace&) {
                         copy_range(n0, n1);
                       });
  }
}

nn::Tensor batch_resists(const Dataset& dataset, const std::vector<std::size_t>& indices,
                         bool centered, util::ExecContext* exec) {
  LITHOGAN_REQUIRE(!indices.empty(), "empty batch");
  const auto& pick = [&](std::size_t i) -> const image::Image& {
    const Sample& s = dataset.samples.at(i);
    return centered ? s.resist_centered : s.resist;
  };
  const auto& first = pick(indices.front());
  nn::Tensor out({indices.size(), 1, first.height(), first.width()});
  const std::size_t stride = first.data().size();
  util::Workspace serial_ws;
  util::parallel_for(exec, serial_ws, 0, indices.size(), 1,
                     indices.size() * stride * 2,
                     [&](std::size_t n0, std::size_t n1, util::Workspace&) {
                       for (std::size_t n = n0; n < n1; ++n) {
                         const auto& img = pick(indices[n]);
                         LITHOGAN_REQUIRE(img.data().size() == stride,
                                          "inhomogeneous dataset images");
                         copy_scaled(img, out.raw() + n * stride);
                       }
                     });
  return out;
}

nn::Tensor batch_centers(const Dataset& dataset, const std::vector<std::size_t>& indices,
                         util::ExecContext*) {
  // Two floats per sample: always cheaper serial than any dispatch.
  LITHOGAN_REQUIRE(!indices.empty(), "empty batch");
  nn::Tensor out({indices.size(), 2});
  for (std::size_t n = 0; n < indices.size(); ++n) {
    const Sample& s = dataset.samples.at(indices[n]);
    out[n * 2 + 0] =
        static_cast<float>(s.center_px.x / static_cast<double>(s.resist.width()));
    out[n * 2 + 1] =
        static_cast<float>(s.center_px.y / static_cast<double>(s.resist.height()));
  }
  return out;
}

image::Image tensor_to_resist_image(const nn::Tensor& tensor) {
  LITHOGAN_REQUIRE(tensor.rank() == 4 || tensor.rank() == 3,
                   "expected (1,1,H,W) or (1,H,W), got " + tensor.shape_string());
  const std::size_t h = tensor.dim(tensor.rank() - 2);
  const std::size_t w = tensor.dim(tensor.rank() - 1);
  LITHOGAN_REQUIRE(tensor.size() == h * w, "expected a single-channel single sample");
  image::Image img(1, h, w);
  for (std::size_t i = 0; i < tensor.size(); ++i) {
    img.data()[i] = (tensor[i] + 1.0f) / 2.0f;
  }
  return img;
}

image::Image tensor_to_resist_image(const nn::Tensor& batch, std::size_t n) {
  image::Image img;
  tensor_to_resist_image_into(batch, n, img);
  return img;
}

void tensor_to_resist_image_into(const nn::Tensor& batch, std::size_t n,
                                 image::Image& out) {
  LITHOGAN_REQUIRE(batch.rank() == 4 && batch.dim(1) == 1 && n < batch.dim(0),
                   "expected (N,1,H,W) row, got " + batch.shape_string());
  const std::size_t h = batch.dim(2);
  const std::size_t w = batch.dim(3);
  const float* row = batch.raw() + n * h * w;
  out.resize(1, h, w);
  for (std::size_t i = 0; i < h * w; ++i) {
    out.data()[i] = (row[i] + 1.0f) / 2.0f;
  }
}

nn::Tensor image_to_tensor(const image::Image& img) {
  nn::Tensor out({1, img.channels(), img.height(), img.width()});
  copy_scaled(img, out.raw());
  return out;
}

geometry::Point denormalize_center(const nn::Tensor& centers, std::size_t row,
                                   std::size_t height, std::size_t width) {
  LITHOGAN_REQUIRE(centers.rank() == 2 && centers.dim(1) == 2 && row < centers.dim(0),
                   "bad centers tensor");
  return {static_cast<double>(centers[row * 2 + 0]) * static_cast<double>(width),
          static_cast<double>(centers[row * 2 + 1]) * static_cast<double>(height)};
}

}  // namespace lithogan::data
