#include "layout/opc.hpp"

#include <algorithm>
#include <cmath>

#include "geometry/marching_squares.hpp"
#include "util/error.hpp"

namespace lithogan::layout {

geometry::Rect OpcEngine::rule_biased(const geometry::Rect& drawn,
                                      std::span<const geometry::Rect> others,
                                      const OpcConfig& config) {
  // Density rule: contacts with close neighbors get the dense bias,
  // lonely ones the (larger) isolated bias.
  bool dense = false;
  for (const auto& other : others) {
    if (other == drawn) continue;
    if (geometry::distance(other.center(), drawn.center()) <= config.rule_dense_radius_nm) {
      dense = true;
      break;
    }
  }
  const double bias = dense ? config.rule_dense_bias_nm : config.rule_iso_bias_nm;
  return drawn.inflated(bias);
}

geometry::Rect OpcEngine::biased(const geometry::Rect& drawn,
                                 const std::vector<geometry::Rect>& all_contacts) const {
  return rule_biased(drawn, all_contacts, config_);
}

void OpcEngine::run_rule_based(MaskClip& clip) const {
  const auto contacts = clip.drawn_contacts();
  clip.target_opc = biased(clip.target, contacts);
  clip.neighbors_opc.clear();
  clip.neighbors_opc.reserve(clip.neighbors.size());
  for (const auto& n : clip.neighbors) clip.neighbors_opc.push_back(biased(n, contacts));
}

namespace {

/// Re-centers and resizes `mask_rect` to cancel the measured print error
/// against `drawn`, with damping and a total-movement clamp.
geometry::Rect correct(const geometry::Rect& mask_rect, const geometry::Rect& drawn,
                       const litho::CriticalDimension& printed,
                       const geometry::Point& printed_center, const OpcConfig& cfg) {
  if (printed.width_nm <= 0.0 || printed.height_nm <= 0.0) {
    // Feature failed to print: open the mask aggressively.
    return mask_rect.inflated(cfg.damping * 4.0);
  }
  const double dw = cfg.damping * (drawn.width() - printed.width_nm) / 2.0;
  const double dh = cfg.damping * (drawn.height() - printed.height_nm) / 2.0;
  const geometry::Point dc =
      (drawn.center() - printed_center) * (cfg.damping * cfg.placement_correction);

  geometry::Rect out{{mask_rect.lo.x - dw + dc.x, mask_rect.lo.y - dh + dc.y},
                     {mask_rect.hi.x + dw + dc.x, mask_rect.hi.y + dh + dc.y}};
  // Clamp total edge movement relative to the drawn shape.
  const auto clamp_edge = [&](double value, double reference) {
    return std::clamp(value, reference - cfg.max_bias_nm, reference + cfg.max_bias_nm);
  };
  out.lo.x = clamp_edge(out.lo.x, drawn.lo.x);
  out.lo.y = clamp_edge(out.lo.y, drawn.lo.y);
  out.hi.x = clamp_edge(out.hi.x, drawn.hi.x);
  out.hi.y = clamp_edge(out.hi.y, drawn.hi.y);
  // Never collapse.
  if (out.width() < 4.0 || out.height() < 4.0) return mask_rect;
  return out;
}

}  // namespace

void OpcEngine::run_model_based(MaskClip& clip, litho::Simulator& sim) const {
  run_rule_based(clip);  // warm start

  for (std::size_t iter = 0; iter < config_.iterations; ++iter) {
    const auto result = sim.run(clip.all_openings());

    // Target contact.
    {
      const auto printed = litho::measure_cd(result.contours, clip.target.center());
      const auto contour = geometry::contour_at(result.contours, clip.target.center());
      const geometry::Point pc =
          contour.empty() ? clip.target.center() : contour.bounding_box().center();
      clip.target_opc = correct(clip.target_opc, clip.target, printed, pc, config_);
    }
    // Neighbors.
    for (std::size_t i = 0; i < clip.neighbors.size(); ++i) {
      const auto& drawn = clip.neighbors[i];
      const auto printed = litho::measure_cd(result.contours, drawn.center());
      const auto contour = geometry::contour_at(result.contours, drawn.center());
      const geometry::Point pc =
          contour.empty() ? drawn.center() : contour.bounding_box().center();
      clip.neighbors_opc[i] = correct(clip.neighbors_opc[i], drawn, printed, pc, config_);
    }
  }
}

}  // namespace lithogan::layout
