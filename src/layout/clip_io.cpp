#include "layout/clip_io.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/fileio.hpp"
#include "util/strings.hpp"

namespace lithogan::layout {

namespace {

const char* type_name(ArrayType t) {
  switch (t) {
    case ArrayType::kIsolated:
      return "isolated";
    case ArrayType::kRow:
      return "row";
    case ArrayType::kGrid:
      return "grid";
  }
  return "isolated";
}

ArrayType type_from(const std::string& name) {
  if (name == "isolated") return ArrayType::kIsolated;
  if (name == "row") return ArrayType::kRow;
  if (name == "grid") return ArrayType::kGrid;
  throw util::FormatError("unknown array type: " + name);
}

void write_rect(std::ostream& os, const char* tag, const geometry::Rect& r) {
  os << tag << " " << r.lo.x << " " << r.lo.y << " " << r.hi.x << " " << r.hi.y << "\n";
}

geometry::Rect parse_rect(std::istringstream& ss, const std::string& line) {
  geometry::Rect r;
  if (!(ss >> r.lo.x >> r.lo.y >> r.hi.x >> r.hi.y)) {
    throw util::FormatError("malformed rectangle line: " + line);
  }
  return r;
}

}  // namespace

std::string clips_to_text(const std::vector<MaskClip>& clips) {
  std::ostringstream os;
  os.precision(17);  // round-trip exact doubles
  os << "# lithogan clip library v1\n";
  for (const MaskClip& clip : clips) {
    os << "clip " << clip.id << " " << type_name(clip.array_type) << " "
       << clip.extent_nm << "\n";
    write_rect(os, "target", clip.target);
    for (const auto& r : clip.neighbors) write_rect(os, "neighbor", r);
    if (clip.has_opc()) {
      write_rect(os, "target_opc", clip.target_opc);
      for (const auto& r : clip.neighbors_opc) write_rect(os, "neighbor_opc", r);
    }
    for (const auto& r : clip.srafs) write_rect(os, "sraf", r);
    os << "end\n";
  }
  return os.str();
}

std::vector<MaskClip> clips_from_text(const std::string& text) {
  std::vector<MaskClip> clips;
  std::istringstream in(text);
  std::string line;
  bool in_clip = false;
  MaskClip current;
  while (std::getline(in, line)) {
    line = util::trim(line);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string keyword;
    ss >> keyword;
    if (keyword == "clip") {
      if (in_clip) throw util::FormatError("nested clip without end");
      current = MaskClip{};
      std::string type;
      if (!(ss >> current.id >> type >> current.extent_nm)) {
        throw util::FormatError("malformed clip header: " + line);
      }
      current.array_type = type_from(type);
      in_clip = true;
    } else if (keyword == "end") {
      if (!in_clip) throw util::FormatError("end without clip");
      if (current.target.area() <= 0.0) {
        throw util::FormatError("clip has no target: " + current.id);
      }
      clips.push_back(std::move(current));
      in_clip = false;
    } else if (!in_clip) {
      throw util::FormatError("shape outside clip: " + line);
    } else if (keyword == "target") {
      current.target = parse_rect(ss, line);
    } else if (keyword == "neighbor") {
      current.neighbors.push_back(parse_rect(ss, line));
    } else if (keyword == "target_opc") {
      current.target_opc = parse_rect(ss, line);
    } else if (keyword == "neighbor_opc") {
      current.neighbors_opc.push_back(parse_rect(ss, line));
    } else if (keyword == "sraf") {
      current.srafs.push_back(parse_rect(ss, line));
    } else {
      throw util::FormatError("unknown keyword: " + keyword);
    }
  }
  if (in_clip) throw util::FormatError("unterminated clip: " + current.id);
  return clips;
}

void save_clips(const std::vector<MaskClip>& clips, const std::string& path) {
  util::write_file(path, clips_to_text(clips));
}

std::vector<MaskClip> load_clips(const std::string& path) {
  return clips_from_text(util::read_file(path));
}

}  // namespace lithogan::layout
