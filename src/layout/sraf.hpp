// Rule-based sub-resolution assist feature (SRAF) insertion.
//
// Scattering bars are placed beside contact edges that face open space:
// they steepen the image slope of sparse features (improving their process
// window) without printing themselves. The rules mirror typical production
// recipes: fixed bar width/offset, bars suppressed where a neighbor or an
// existing bar is too close.
#pragma once

#include "layout/clip.hpp"
#include "litho/process.hpp"

namespace lithogan::layout {

struct SrafConfig {
  double bar_width_nm = 24.0;       ///< below the printing threshold
  double bar_length_nm = 80.0;
  double offset_nm = 90.0;          ///< contact edge to bar center
  /// A bar is only placed when no contact lies within this distance on
  /// that side (dense contacts assist each other already).
  double open_space_nm = 180.0;
  /// Minimum clearance between a new bar and any existing shape.
  double clearance_nm = 30.0;
};

class SrafInserter {
 public:
  SrafInserter(const litho::ProcessConfig& process, SrafConfig config);

  /// Fills clip.srafs. Pre-existing SRAFs are replaced. Bars that would
  /// violate clearance against contacts or earlier bars are dropped.
  void insert(MaskClip& clip) const;

 private:
  litho::ProcessConfig process_;
  SrafConfig config_;
};

}  // namespace lithogan::layout
