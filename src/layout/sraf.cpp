#include "layout/sraf.hpp"

#include <array>

#include "util/error.hpp"

namespace lithogan::layout {

SrafInserter::SrafInserter(const litho::ProcessConfig& process, SrafConfig config)
    : process_(process), config_(config) {
  LITHOGAN_REQUIRE(config.bar_width_nm > 0 && config.bar_length_nm > 0, "bar size");
  LITHOGAN_REQUIRE(config.bar_width_nm < process.contact_size_nm,
                   "SRAF must be sub-resolution (narrower than a contact)");
  LITHOGAN_REQUIRE(config.offset_nm > process.contact_size_nm / 2.0,
                   "SRAF offset must clear the contact itself");
}

void SrafInserter::insert(MaskClip& clip) const {
  clip.srafs.clear();
  const auto contacts = clip.drawn_contacts();

  const auto too_close = [&](const geometry::Rect& bar) {
    const geometry::Rect guard = bar.inflated(config_.clearance_nm);
    for (const auto& c : contacts) {
      if (guard.intersects(c)) return true;
    }
    for (const auto& s : clip.srafs) {
      if (guard.intersects(s)) return true;
    }
    return false;
  };

  for (const auto& contact : contacts) {
    const geometry::Point c = contact.center();
    // Candidate bars on the four sides: E, W, N, S. Vertical bars flank in
    // x; horizontal bars flank in y.
    struct Side {
      geometry::Point dir;
      bool vertical;
    };
    const std::array<Side, 4> sides = {{{{1.0, 0.0}, true},
                                        {{-1.0, 0.0}, true},
                                        {{0.0, 1.0}, false},
                                        {{0.0, -1.0}, false}}};
    for (const auto& side : sides) {
      // Skip sides that already have a contact nearby.
      bool open = true;
      for (const auto& other : contacts) {
        if (&other == &contact) continue;
        const geometry::Point d = other.center() - c;
        const double along = dot(d, side.dir);
        const double across = std::abs(cross(d, side.dir));
        if (along > 0 && along < config_.open_space_nm &&
            across < config_.open_space_nm / 2.0) {
          open = false;
          break;
        }
      }
      if (!open) continue;

      const geometry::Point bar_center = c + side.dir * config_.offset_nm;
      const geometry::Rect bar =
          side.vertical
              ? geometry::Rect::from_center(bar_center, config_.bar_width_nm,
                                            config_.bar_length_nm)
              : geometry::Rect::from_center(bar_center, config_.bar_length_nm,
                                            config_.bar_width_nm);
      // Keep bars inside the clip with margin.
      if (bar.lo.x < 0 || bar.lo.y < 0 || bar.hi.x > clip.extent_nm ||
          bar.hi.y > clip.extent_nm) {
        continue;
      }
      if (too_close(bar)) continue;
      clip.srafs.push_back(bar);
    }
  }
}

}  // namespace lithogan::layout
