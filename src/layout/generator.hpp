// Randomized contact-clip synthesis.
//
// Stands in for the paper's industrial mask clips: ~1000 clips per node,
// drawn from three contact-array families (isolated, 1-D rows, 2-D grids)
// with randomized pitch, extent and dropout so the GAN sees a wide range of
// optical neighborhoods. The target contact is always exactly centered.
#pragma once

#include "layout/clip.hpp"
#include "litho/process.hpp"
#include "util/rng.hpp"

namespace lithogan::layout {

struct GeneratorConfig {
  /// Pitch range, as multiples of the process minimum pitch.
  double pitch_min_factor = 1.0;
  double pitch_max_factor = 2.2;
  /// Maximum half-extent of neighbor placement around the target (nm);
  /// clipped to keep all contacts inside the window with margin.
  double neighborhood_nm = 400.0;
  /// Probability that a grid/row site (other than the target) is occupied.
  double occupancy = 0.8;
  /// Per-contact random center jitter (nm, uniform in +/- jitter). Jittered
  /// neighborhoods make the printed target center wander, which is what the
  /// center CNN must learn.
  double position_jitter_nm = 5.0;
};

class ClipGenerator {
 public:
  ClipGenerator(const litho::ProcessConfig& process, GeneratorConfig config,
                util::Rng rng);

  /// One random clip of the given family.
  MaskClip generate(ArrayType type);

  /// One random clip, family drawn uniformly.
  MaskClip generate();

  /// `count` clips cycling through the three families (so every dataset has
  /// all of them, like the paper's).
  std::vector<MaskClip> generate_dataset(std::size_t count);

  /// Sets the counter embedded in generated clip ids. Clip-parallel dataset
  /// builders construct one generator per clip; giving each a disjoint id
  /// block keeps ids unique and independent of scheduling.
  void set_next_id(std::size_t id) { next_id_ = id; }

 private:
  litho::ProcessConfig process_;
  GeneratorConfig config_;
  util::Rng rng_;
  std::size_t next_id_ = 0;

  MaskClip make_isolated();
  MaskClip make_row();
  MaskClip make_grid();
  MaskClip make_base(ArrayType type);
  geometry::Rect contact_at(geometry::Point center);
};

}  // namespace lithogan::layout
