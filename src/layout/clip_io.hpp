// Plain-text clip-library persistence.
//
// A minimal, diffable interchange format (one shape per line) so clip sets
// can be generated once, inspected by hand, and replayed through different
// RET/simulation configurations — the role GDS/OASIS clips play in real
// flows, without the binary format baggage.
//
//   clip <id> <array_type> <extent_nm>
//   target  <lox> <loy> <hix> <hiy>
//   neighbor <lox> <loy> <hix> <hiy>
//   target_opc / neighbor_opc / sraf ...
//   end
#pragma once

#include <string>
#include <vector>

#include "layout/clip.hpp"

namespace lithogan::layout {

/// Serializes clips to the text format above.
std::string clips_to_text(const std::vector<MaskClip>& clips);

/// Parses the text format. Throws FormatError on malformed input.
std::vector<MaskClip> clips_from_text(const std::string& text);

/// File convenience wrappers.
void save_clips(const std::vector<MaskClip>& clips, const std::string& path);
std::vector<MaskClip> load_clips(const std::string& path);

}  // namespace lithogan::layout
