#include "layout/generator.hpp"

#include <cmath>

#include "util/error.hpp"

namespace lithogan::layout {

ClipGenerator::ClipGenerator(const litho::ProcessConfig& process, GeneratorConfig config,
                             util::Rng rng)
    : process_(process), config_(config), rng_(rng) {
  process_.validate();
  LITHOGAN_REQUIRE(config.pitch_min_factor >= 1.0, "pitch below process minimum");
  LITHOGAN_REQUIRE(config.pitch_max_factor >= config.pitch_min_factor, "pitch range");
  LITHOGAN_REQUIRE(config.occupancy > 0.0 && config.occupancy <= 1.0, "occupancy");
}

geometry::Rect ClipGenerator::contact_at(geometry::Point center) {
  const double jitter = config_.position_jitter_nm;
  const geometry::Point jittered{center.x + rng_.uniform(-jitter, jitter),
                                 center.y + rng_.uniform(-jitter, jitter)};
  return geometry::Rect::from_center(jittered, process_.contact_size_nm,
                                     process_.contact_size_nm);
}

MaskClip ClipGenerator::make_base(ArrayType type) {
  MaskClip clip;
  clip.id = process_.name + "-" + to_string(type) + "-" + std::to_string(next_id_++);
  clip.array_type = type;
  clip.extent_nm = process_.grid.extent_nm;
  // The target is exactly centered (no jitter): the paper's crops guarantee
  // this and the center CNN learns displacement of the *printed* pattern.
  clip.target = geometry::Rect::from_center(clip.center(), process_.contact_size_nm,
                                            process_.contact_size_nm);
  return clip;
}

MaskClip ClipGenerator::make_isolated() {
  MaskClip clip = make_base(ArrayType::kIsolated);
  // Zero to two far-away companions so "isolated" still has mild context
  // variation.
  const auto companions = static_cast<std::size_t>(rng_.uniform_int(0, 2));
  const geometry::Point c = clip.center();
  for (std::size_t i = 0; i < companions; ++i) {
    const double r = rng_.uniform(2.2, 3.2) * process_.min_pitch_nm;
    const double theta = rng_.uniform(0.0, 2.0 * 3.14159265358979323846);
    clip.neighbors.push_back(
        contact_at({c.x + r * std::cos(theta), c.y + r * std::sin(theta)}));
  }
  return clip;
}

MaskClip ClipGenerator::make_row() {
  MaskClip clip = make_base(ArrayType::kRow);
  const double pitch = process_.min_pitch_nm *
                       rng_.uniform(config_.pitch_min_factor, config_.pitch_max_factor);
  const bool horizontal = rng_.bernoulli(0.5);
  const auto half_len = static_cast<int>(rng_.uniform_int(1, 3));
  const geometry::Point c = clip.center();
  for (int k = -half_len; k <= half_len; ++k) {
    if (k == 0) continue;  // the target occupies the center site
    if (!rng_.bernoulli(config_.occupancy)) continue;
    const double off = static_cast<double>(k) * pitch;
    const geometry::Point site =
        horizontal ? geometry::Point{c.x + off, c.y} : geometry::Point{c.x, c.y + off};
    if (std::abs(site.x - c.x) > config_.neighborhood_nm ||
        std::abs(site.y - c.y) > config_.neighborhood_nm) {
      continue;
    }
    clip.neighbors.push_back(contact_at(site));
  }
  return clip;
}

MaskClip ClipGenerator::make_grid() {
  MaskClip clip = make_base(ArrayType::kGrid);
  const double pitch_x = process_.min_pitch_nm *
                         rng_.uniform(config_.pitch_min_factor, config_.pitch_max_factor);
  const double pitch_y = process_.min_pitch_nm *
                         rng_.uniform(config_.pitch_min_factor, config_.pitch_max_factor);
  const auto half_x = static_cast<int>(rng_.uniform_int(1, 2));
  const auto half_y = static_cast<int>(rng_.uniform_int(1, 2));
  const geometry::Point c = clip.center();
  for (int ky = -half_y; ky <= half_y; ++ky) {
    for (int kx = -half_x; kx <= half_x; ++kx) {
      if (kx == 0 && ky == 0) continue;
      if (!rng_.bernoulli(config_.occupancy)) continue;
      const geometry::Point site{c.x + static_cast<double>(kx) * pitch_x,
                                 c.y + static_cast<double>(ky) * pitch_y};
      if (std::abs(site.x - c.x) > config_.neighborhood_nm ||
          std::abs(site.y - c.y) > config_.neighborhood_nm) {
        continue;
      }
      clip.neighbors.push_back(contact_at(site));
    }
  }
  return clip;
}

MaskClip ClipGenerator::generate(ArrayType type) {
  switch (type) {
    case ArrayType::kIsolated:
      return make_isolated();
    case ArrayType::kRow:
      return make_row();
    case ArrayType::kGrid:
      return make_grid();
  }
  LITHOGAN_REQUIRE(false, "unknown array type");
  return {};
}

MaskClip ClipGenerator::generate() {
  const auto pick = rng_.uniform_int(0, 2);
  return generate(static_cast<ArrayType>(pick));
}

std::vector<MaskClip> ClipGenerator::generate_dataset(std::size_t count) {
  std::vector<MaskClip> clips;
  clips.reserve(count);
  constexpr ArrayType kCycle[3] = {ArrayType::kIsolated, ArrayType::kRow,
                                   ArrayType::kGrid};
  for (std::size_t i = 0; i < count; ++i) {
    clips.push_back(generate(kCycle[i % 3]));
  }
  return clips;
}

}  // namespace lithogan::layout
