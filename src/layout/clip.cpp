#include "layout/clip.hpp"

namespace lithogan::layout {

std::string to_string(ArrayType type) {
  switch (type) {
    case ArrayType::kIsolated:
      return "isolated";
    case ArrayType::kRow:
      return "row";
    case ArrayType::kGrid:
      return "grid";
  }
  return "?";
}

std::vector<geometry::Rect> MaskClip::all_openings() const {
  std::vector<geometry::Rect> out;
  out.reserve(1 + neighbors.size() + srafs.size());
  if (has_opc()) {
    out.push_back(target_opc);
    out.insert(out.end(), neighbors_opc.begin(), neighbors_opc.end());
  } else {
    out.push_back(target);
    out.insert(out.end(), neighbors.begin(), neighbors.end());
  }
  out.insert(out.end(), srafs.begin(), srafs.end());
  return out;
}

std::vector<geometry::Rect> MaskClip::drawn_contacts() const {
  std::vector<geometry::Rect> out;
  out.reserve(1 + neighbors.size());
  out.push_back(target);
  out.insert(out.end(), neighbors.begin(), neighbors.end());
  return out;
}

}  // namespace lithogan::layout
