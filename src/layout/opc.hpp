// Optical proximity correction.
//
// Two engines, as in production flows:
//   * rule-based — a constant-plus-density bias lookup, instant;
//   * model-based — iterative: simulate, measure each contact's printed CD
//     and center, resize/shift the mask rectangle to cancel the error.
// The dataset pipeline runs model-based OPC (the paper's clips went through
// Mentor Calibre OPC) so the GAN sees realistic post-RET mask geometry.
#pragma once

#include <span>

#include "layout/clip.hpp"
#include "litho/simulator.hpp"

namespace lithogan::layout {

struct OpcConfig {
  std::size_t iterations = 5;      ///< model-based correction passes
  /// Fraction of the measured error corrected per pass. Deliberately small:
  /// low-k1 contacts have a mask error enhancement factor (MEEF) of 3-4, so
  /// aggressive damping over-relaxes and oscillates.
  double damping = 0.3;
  double max_bias_nm = 12.0;       ///< clamp on total edge movement
  /// Fraction of the printed-center offset corrected per pass. Basic OPC
  /// recipes target CD only, leaving the pattern-placement error induced by
  /// asymmetric neighborhoods — exactly the signal LithoGAN's center CNN
  /// learns (Sec. 3.3). Set > 0 for placement-aware OPC.
  double placement_correction = 0.0;
  double rule_iso_bias_nm = 4.0;   ///< rule-based: bias for isolated contacts
  double rule_dense_bias_nm = 1.0; ///< rule-based: bias when neighbors are close
  double rule_dense_radius_nm = 150.0;
};

class OpcEngine {
 public:
  explicit OpcEngine(OpcConfig config) : config_(config) {}

  /// Fills target_opc / neighbors_opc with biased rectangles from the
  /// density rule. O(contacts^2), no simulation.
  void run_rule_based(MaskClip& clip) const;

  /// Iterative model-based OPC using `sim` (which must be calibrated).
  /// Starts from the rule-based solution, then corrects per-contact width,
  /// height and center against the drawn shapes. SRAFs are held fixed.
  void run_model_based(MaskClip& clip, litho::Simulator& sim) const;

  const OpcConfig& config() const { return config_; }

  /// The density rule on its own: bias `drawn` by the dense bias when any
  /// other rectangle's center is within rule_dense_radius_nm, else by the
  /// isolated bias. `drawn` itself is skipped if present in `others`.
  /// Exposed so layers that keep contacts outside a MaskClip (the chip
  /// layout) apply exactly the same rule as run_rule_based.
  static geometry::Rect rule_biased(const geometry::Rect& drawn,
                                    std::span<const geometry::Rect> others,
                                    const OpcConfig& config);

 private:
  OpcConfig config_;

  geometry::Rect biased(const geometry::Rect& drawn,
                        const std::vector<geometry::Rect>& all_contacts) const;
};

}  // namespace lithogan::layout
