// Mask clip representation.
//
// A clip is the 1x1 um window around one target contact (the paper crops
// 2x2 um RET-processed clips down to 1x1 um with the target centered,
// Sec. 3.1). Coordinates are clip-local nanometres with the origin at the
// lower-left corner, so the target center sits at (extent/2, extent/2).
#pragma once

#include <string>
#include <vector>

#include "geometry/primitives.hpp"

namespace lithogan::layout {

/// The three contact-array families observed in the paper's datasets
/// (Sec. 4.1 mentions "three types of contact arrays").
enum class ArrayType { kIsolated, kRow, kGrid };

std::string to_string(ArrayType type);

struct MaskClip {
  std::string id;
  ArrayType array_type = ArrayType::kIsolated;
  double extent_nm = 1024.0;

  // Drawn (pre-RET) shapes.
  geometry::Rect target;                   ///< the center contact
  std::vector<geometry::Rect> neighbors;   ///< other contacts in the window

  // Post-RET shapes (filled by OpcEngine / SrafInserter).
  geometry::Rect target_opc = geometry::Rect::empty();  ///< empty until OPC runs
  std::vector<geometry::Rect> neighbors_opc;
  std::vector<geometry::Rect> srafs;

  geometry::Point center() const { return {extent_nm / 2.0, extent_nm / 2.0}; }

  bool has_opc() const { return !target_opc.is_empty(); }

  /// All transmitting openings for simulation: post-OPC contacts when OPC
  /// has run (drawn shapes otherwise) plus SRAFs.
  std::vector<geometry::Rect> all_openings() const;

  /// Drawn contacts only (target first), pre-RET.
  std::vector<geometry::Rect> drawn_contacts() const;
};

}  // namespace lithogan::layout
