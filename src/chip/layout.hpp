// Full-chip contact layout.
//
// The per-clip pipeline (layout::ClipGenerator) places one target plus its
// neighborhood inside a 1024 nm window; a chip is the same placement idiom
// scaled out: the window is divided into fixed placement *cells* and every
// cell draws its own contact group (isolated / row / grid, the paper's three
// array classes) from a deterministic per-cell RNG stream. Cells — not
// tiles — are the RNG unit on purpose: the layout is a pure function of
// (seed, cell index), so retiling the chip (different tile size, different
// halo, different thread count) can never change what is on the mask. That
// invariance is what makes the halo ownership tests meaningful.
//
// Groups are confined to their cell minus a min-pitch margin, which
// guarantees the inter-cell spacing rule without any cross-cell negotiation
// and gives the spatial index a trivial shape: contacts are stored
// cell-major, so a window query is a loop over the covered cell range.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geometry/primitives.hpp"
#include "litho/process.hpp"

namespace lithogan::chip {

struct ChipConfig {
  double chip_nm = 4096.0;         ///< chip window edge length
  double tile_extent_nm = 2048.0;  ///< tile grid edge (core + 2 x halo)
  std::size_t tile_pixels = 512;   ///< tile grid resolution (keeps clip pixel pitch)
  /// Halo width in units of the optical kernel ambit (the broadest
  /// point-spread lobe, read from the pupil support — see
  /// litho::OpticalModel::kernel_ambit_nm). Larger = tighter seam accuracy,
  /// smaller tile cores. Resist diffusion and the VTR window are added on
  /// top automatically.
  double halo_lobes = 4.0;
  std::size_t ring_depth = 4;      ///< in-flight tile slots (bounds memory)
  std::size_t infer_batch = 16;    ///< learned-path sub-batch size
  std::uint64_t seed = 7;          ///< placement seed
  double cell_nm = 512.0;          ///< placement cell pitch
  double occupancy = 0.8;          ///< per-site keep probability in groups
  double position_jitter_nm = 5.0; ///< per-contact placement jitter

  void validate() const;
};

/// One drawn contact and its rule-OPC-biased mask rectangle, chip-space nm.
struct ChipContact {
  geometry::Rect drawn;
  geometry::Rect opc;
  std::uint32_t cell = 0;  ///< generating placement cell
};

class ChipLayout {
 public:
  /// Generates the layout: one contact group per cell from Rng(seed, cell),
  /// then one rule-OPC pass (layout::OpcEngine::rule_biased against every
  /// drawn contact within the dense radius, across cell boundaries).
  ChipLayout(const litho::ProcessConfig& process, const ChipConfig& config);

  /// Builds the index over caller-provided contacts (tests hand-place exact
  /// integer coordinates this way). Contacts must lie inside the chip; they
  /// are re-sorted cell-major and re-biased by the same OPC rule.
  ChipLayout(const litho::ProcessConfig& process, const ChipConfig& config,
             std::vector<geometry::Rect> drawn);

  const std::vector<ChipContact>& contacts() const { return contacts_; }
  double chip_nm() const { return config_.chip_nm; }
  const ChipConfig& config() const { return config_; }

  /// Appends (ascending) the indices of contacts whose OPC rectangle
  /// intersects `window` to `out` (cleared first). Allocation-free once
  /// `out` is warm — the tile loop's steady-state query.
  void query(const geometry::Rect& window, std::vector<std::uint32_t>& out) const;

 private:
  litho::ProcessConfig process_;
  ChipConfig config_;
  std::size_t cells_x_ = 0;
  std::size_t cells_y_ = 0;
  std::vector<ChipContact> contacts_;       ///< cell-major order
  std::vector<geometry::Rect> drawn_rects_; ///< contacts_[i].drawn, for span views
  std::vector<std::uint32_t> cell_start_;   ///< cells+1 offsets into contacts_

  void index_and_bias(std::vector<std::pair<std::uint32_t, geometry::Rect>> placed);
  /// Like query() but against the drawn rectangles' centers — used by the
  /// OPC pass, which runs before the biased rectangles exist.
  void query_drawn(const geometry::Rect& window, std::vector<std::uint32_t>& out) const;
};

}  // namespace lithogan::chip
