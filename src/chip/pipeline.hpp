// Full-chip streaming pipeline: halo-tiled simulation with amortized
// precompute and bounded memory.
//
// The chip window is covered by disjoint tile *cores* of core_nm pitch;
// each simulated tile is its core plus a halo on every side, sized from the
// optical kernel ambit (pupil support) plus the resist diffusion and VTR
// window reach — never hard-coded. Every contact is *owned* by exactly one
// tile: the one whose half-open core contains its drawn center, a pure
// function of the layout, so ownership can never depend on floating-point
// simulation output, tile visit order or thread count. A tile simulates
// everything inside core + halo but reports only its owned contacts;
// stitching a contour into chip space is then a translation of the owner
// tile's local contour — seams need no geometric merging because the halo
// guarantees the owner window already contains the whole neighborhood that
// shapes the contour.
//
// Perf structure (the point of the subsystem):
//   * all per-process precompute — optical transfer windows, FFT/conv
//     plans, inference plans, resist tables — is hoisted out of the tile
//     loop: the golden path keeps one calibrated simulator clone per worker
//     alive across the whole run, the learned path reuses one
//     core::PredictScratch and warm sample/image slots, so plan-cache
//     counters show misses only while the first tiles warm up;
//   * a fixed-depth ring of tile slots bounds memory: at most ring_depth
//     tiles are ever materialized, whatever the chip size;
//   * the learned tile loop performs zero heap allocations once warm
//     (bench/chip_bench.cpp gates this with a counting operator new).
//
// See docs/chip_pipeline.md for the halo math and the bit-identity
// contract the tests enforce.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "chip/layout.hpp"
#include "core/lithogan.hpp"
#include "data/sample.hpp"
#include "geometry/marching_squares.hpp"
#include "geometry/polygon.hpp"
#include "litho/simulator.hpp"
#include "util/exec_context.hpp"

namespace lithogan::chip {

/// Stitched, chip-space result for one owned contact.
struct ContactResult {
  std::uint32_t contact = 0;      ///< index into ChipLayout::contacts()
  bool printed = false;
  geometry::Point center_nm;      ///< printed bbox center (drawn center if not printed)
  double cd_width_nm = 0.0;
  double cd_height_nm = 0.0;
  geometry::Polygon contour;      ///< printed contour, chip-space nm
};

struct ChipStats {
  std::size_t tiles_x = 0;
  std::size_t tiles_y = 0;
  std::size_t tiles_run = 0;      ///< cumulative over runs
  std::size_t contacts_done = 0;  ///< cumulative over runs
  std::size_t ring_slots = 0;     ///< tile slots materialized (<= ring_depth)
  std::size_t ring_bytes = 0;     ///< slot-owned buffer capacity, peak-RSS proxy
};

class ChipPipeline {
 public:
  /// `process` is the clip-scale process (pass an already-calibrated
  /// config — e.g. litho::Simulator::process() after calibrate_dose — to
  /// share the dose across every tile); the pipeline re-grids it to the
  /// layout's tile_extent_nm x tile_pixels. `exec` (not owned, nullable)
  /// parallelizes the golden path across tiles.
  ChipPipeline(const litho::ProcessConfig& process, const ChipLayout& layout,
               util::ExecContext* exec = nullptr);
  ~ChipPipeline();  // out of line: LearnedState is an incomplete type here

  /// Per-tile result callback. Called serially, in ascending tile index
  /// order; the span points into ring-slot storage and is valid only for
  /// the duration of the call. Results within a tile are in ascending
  /// contact-index order.
  using Sink = std::function<void(std::size_t tile, std::span<const ContactResult>)>;

  /// Streams every tile through rasterize -> simulate -> stitch. Tiles in
  /// each ring wave fan out across the pool (one persistent serial-clone
  /// simulator per worker); stitching and the sink run serially in tile
  /// order. Bit-identical at any thread count including serial.
  void run_golden(const Sink& sink);

  /// Streams every tile through the learned path: per owned contact a
  /// clip-local mask is rendered and batched through
  /// core::LithoGan::predict_batch_into (single-threaded by contract, so
  /// the tile loop is serial; the plans parallelize internally over
  /// `process.exec`/the model's exec). Zero heap allocations per tile once
  /// warm.
  void run_learned(core::LithoGan& model, const Sink& sink);

  double halo_nm() const { return halo_nm_; }
  double core_nm() const { return core_nm_; }
  std::size_t tiles_x() const { return tiles_x_; }
  std::size_t tiles_y() const { return tiles_y_; }
  std::size_t tiles() const { return tiles_x_ * tiles_y_; }

  /// Simulation window of tile (ix, iy): its core [ix*core, (ix+1)*core) x
  /// [...] inflated by the halo.
  geometry::Rect tile_window(std::size_t ix, std::size_t iy) const;

  /// The unique tile whose half-open core contains `center_nm`.
  std::size_t owner_tile(const geometry::Point& center_nm) const;

  /// The re-gridded (tile-scale) process config the golden tiles run.
  const litho::ProcessConfig& tile_process() const { return tile_process_; }

  const ChipStats& stats() const { return stats_; }

 private:
  struct GoldenSlot {
    std::vector<std::uint32_t> idx;            ///< layout query scratch
    std::vector<geometry::Rect> openings;      ///< tile-local mask openings
    litho::SimulationResult result;
  };

  const ChipLayout& layout_;
  ChipConfig config_;
  litho::ProcessConfig clip_process_;  ///< original clip-scale process (learned path)
  litho::ProcessConfig tile_process_;
  util::ExecContext* exec_ = nullptr;
  double halo_nm_ = 0.0;
  double core_nm_ = 0.0;
  std::size_t tiles_x_ = 0;
  std::size_t tiles_y_ = 0;
  ChipStats stats_;

  /// Golden-path state, persistent across run_golden calls so the optical
  /// precompute amortizes over the whole chip (and over repeat runs).
  std::unique_ptr<litho::Simulator> master_;            ///< serial tile simulator
  std::vector<std::unique_ptr<litho::Simulator>> clones_;  ///< one per worker
  std::vector<GoldenSlot> slots_;

  /// Learned-path warm state (see run_learned).
  struct LearnedState;
  std::unique_ptr<LearnedState> learned_;

  /// Result slots handed to the sink; grown but never shrunk so pooled
  /// contour polygons keep their capacity.
  std::vector<ContactResult> results_;

  void stitch_golden(std::size_t tile, GoldenSlot& slot, const Sink& sink);
  std::size_t collect_ring_bytes() const;
};

}  // namespace lithogan::chip
