#include "chip/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "data/render.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace lithogan::chip {

namespace {

/// The contour whose bounding box contains `p` with the smallest area —
/// geometry::contour_at without the copy, over the first `count` entries.
const geometry::Polygon* pick_contour(std::span<const geometry::Polygon> contours,
                                      const geometry::Point& p) {
  const geometry::Polygon* best = nullptr;
  double best_area = std::numeric_limits<double>::infinity();
  for (const geometry::Polygon& c : contours) {
    const geometry::Rect box = c.bounding_box();
    if (!box.contains(p)) continue;
    const double a = box.area();
    if (a < best_area) {
      best_area = a;
      best = &c;
    }
  }
  return best;
}

obs::Counter& tiles_counter() {
  static obs::Counter& c = obs::Registry::global().counter("chip.tiles");
  return c;
}
obs::Counter& contacts_counter() {
  static obs::Counter& c = obs::Registry::global().counter("chip.contacts");
  return c;
}
obs::Histogram& stitch_histogram() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "chip.stitch_ms", obs::default_ms_buckets());
  return h;
}

}  // namespace

ChipPipeline::ChipPipeline(const litho::ProcessConfig& process, const ChipLayout& layout,
                           util::ExecContext* exec)
    : layout_(layout),
      config_(layout.config()),
      clip_process_(process),
      tile_process_(process),
      exec_(exec) {
  // Tiles run on their own (larger) grid at the same physical pixel pitch
  // idea as the clip grid, serial inner kernels: tiles themselves are the
  // parallel unit, so inner fan-out would only oversubscribe.
  tile_process_.grid.extent_nm = config_.tile_extent_nm;
  tile_process_.grid.pixels = config_.tile_pixels;
  tile_process_.exec = nullptr;
  tile_process_.validate();
  master_ = std::make_unique<litho::Simulator>(tile_process_);

  // Halo = optical reach + resist reach, in whole pixels so tile origins
  // stay exact pixel multiples (the translation-equivariance contract).
  // Optical: halo_lobes resolution lobes of the broadest SOCS kernel, read
  // from the pupil support. Resist: 4 sigma of acid diffusion plus half the
  // VTR local-statistics window.
  const double ambit = master_->optical().kernel_ambit_nm();
  const double halo_raw = config_.halo_lobes * ambit +
                          4.0 * tile_process_.resist.diffusion_length_nm +
                          tile_process_.resist.vtr_window_nm / 2.0;
  const double px = tile_process_.grid.pixel_nm();
  halo_nm_ = std::ceil(halo_raw / px) * px;
  core_nm_ = config_.tile_extent_nm - 2.0 * halo_nm_;
  LITHOGAN_REQUIRE(core_nm_ > 0.0,
                   "halo leaves no tile core; increase tile_extent_nm or "
                   "reduce halo_lobes");
  tiles_x_ = static_cast<std::size_t>(std::ceil(config_.chip_nm / core_nm_));
  tiles_y_ = tiles_x_;
  stats_.tiles_x = tiles_x_;
  stats_.tiles_y = tiles_y_;

  slots_.resize(std::min(config_.ring_depth, tiles()));
  stats_.ring_slots = slots_.size();
}

ChipPipeline::~ChipPipeline() = default;

geometry::Rect ChipPipeline::tile_window(std::size_t ix, std::size_t iy) const {
  const double ox = static_cast<double>(ix) * core_nm_ - halo_nm_;
  const double oy = static_cast<double>(iy) * core_nm_ - halo_nm_;
  return {{ox, oy}, {ox + config_.tile_extent_nm, oy + config_.tile_extent_nm}};
}

std::size_t ChipPipeline::owner_tile(const geometry::Point& center_nm) const {
  const auto axis = [&](double v, std::size_t count) {
    const double c = std::floor(v / core_nm_);
    if (c < 0.0) return static_cast<std::size_t>(0);
    return std::min(static_cast<std::size_t>(c), count - 1);
  };
  return axis(center_nm.y, tiles_y_) * tiles_x_ + axis(center_nm.x, tiles_x_);
}

void ChipPipeline::run_golden(const Sink& sink) {
  const std::size_t total = tiles();
  const std::size_t depth = slots_.size();
  util::ThreadPool* pool = exec_ ? &exec_->pool() : nullptr;
  if (pool && clones_.size() < exec_->threads()) clones_.resize(exec_->threads());

  const auto process_tile = [&](std::size_t tile, litho::Simulator& sim,
                                GoldenSlot& slot) {
    const obs::Span span("chip.tile");
    const geometry::Rect window = tile_window(tile % tiles_x_, tile / tiles_x_);
    {
      const obs::Span raster_span("chip.rasterize");
      layout_.query(window, slot.idx);
      slot.openings.clear();
      for (const std::uint32_t i : slot.idx) {
        slot.openings.push_back(
            layout_.contacts()[i].opc.translated({-window.lo.x, -window.lo.y}));
      }
    }
    const obs::Span sim_span("chip.sim");
    slot.result = sim.run(slot.openings);
  };

  for (std::size_t wave = 0; wave < total; wave += depth) {
    const std::size_t count = std::min(depth, total - wave);
    if (pool) {
      // One persistent serial-clone simulator per worker: the optical
      // precompute runs at most threads() times for the whole chip (and is
      // reused by later waves and later runs), not once per wave.
      pool->parallel_for(0, count, 1,
                         [&](std::size_t b, std::size_t e, std::size_t worker) {
                           auto& sim = clones_[worker];
                           if (!sim) {
                             sim = std::make_unique<litho::Simulator>(tile_process_);
                           }
                           for (std::size_t k = b; k < e; ++k) {
                             process_tile(wave + k, *sim, slots_[k]);
                           }
                         });
    } else {
      for (std::size_t k = 0; k < count; ++k) {
        process_tile(wave + k, *master_, slots_[k]);
      }
    }
    // Stitch + sink serially, in tile order: results are deterministic and
    // identical at any thread count because each tile's simulation depends
    // only on its own window.
    for (std::size_t k = 0; k < count; ++k) {
      stitch_golden(wave + k, slots_[k], sink);
    }
  }
  stats_.ring_bytes = std::max(stats_.ring_bytes, collect_ring_bytes());
}

void ChipPipeline::stitch_golden(std::size_t tile, GoldenSlot& slot, const Sink& sink) {
  const obs::Span span("chip.stitch");
  util::Timer timer;
  const geometry::Rect window = tile_window(tile % tiles_x_, tile / tiles_x_);
  const geometry::Point origin = window.lo;

  std::size_t n = 0;
  for (const std::uint32_t i : slot.idx) {
    const ChipContact& contact = layout_.contacts()[i];
    const geometry::Point center = contact.drawn.center();
    if (owner_tile(center) != tile) continue;  // a neighbor's halo copy
    if (n == results_.size()) results_.emplace_back();
    ContactResult& r = results_[n];
    ++n;
    r.contact = i;
    r.contour.clear();
    const geometry::Point local{center.x - origin.x, center.y - origin.y};
    const geometry::Polygon* best = pick_contour(slot.result.contours, local);
    if (best != nullptr && best->size() >= 3) {
      r.printed = true;
      for (const geometry::Point& p : best->vertices()) {
        r.contour.push_back({p.x + origin.x, p.y + origin.y});
      }
      const geometry::Rect box = best->bounding_box();
      r.cd_width_nm = box.width();
      r.cd_height_nm = box.height();
      r.center_nm = {box.center().x + origin.x, box.center().y + origin.y};
    } else {
      r.printed = false;
      r.cd_width_nm = 0.0;
      r.cd_height_nm = 0.0;
      r.center_nm = center;
    }
  }
  sink(tile, std::span<const ContactResult>(results_.data(), n));
  tiles_counter().add();
  contacts_counter().add(n);
  stitch_histogram().observe(timer.elapsed_seconds() * 1000.0);
  ++stats_.tiles_run;
  stats_.contacts_done += n;
}

struct ChipPipeline::LearnedState {
  layout::MaskClip clip;
  std::vector<data::Sample> samples;            ///< infer_batch warm lanes
  std::vector<const data::Sample*> sample_ptrs;
  std::vector<image::Image> outputs;
  std::vector<image::Image*> output_ptrs;
  std::vector<std::uint32_t> lane_contact;
  core::PredictScratch scratch;
  std::vector<std::uint32_t> idx;       ///< tile-window query scratch
  std::vector<std::uint32_t> nidx;      ///< clip-neighborhood query scratch
  std::vector<double> grid;             ///< resist image as double field
  geometry::ContourScratch contours;
  std::vector<geometry::Polygon> pool;  ///< extracted-contour pool
};

void ChipPipeline::run_learned(core::LithoGan& model, const Sink& sink) {
  if (!learned_) learned_ = std::make_unique<LearnedState>();
  LearnedState& st = *learned_;
  const std::size_t batch = config_.infer_batch;
  if (st.samples.size() != batch) {
    st.samples.resize(batch);
    st.outputs.resize(batch);
    st.sample_ptrs.resize(batch);
    st.output_ptrs.resize(batch);
    st.lane_contact.resize(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      st.samples[i].clip_id = "chip";  // SSO — never reallocates
      st.sample_ptrs[i] = &st.samples[i];
      st.output_ptrs[i] = &st.outputs[i];
    }
  }

  const std::size_t size = model.config().image_size;
  data::RenderConfig rc;
  rc.mask_size_px = size;
  rc.resist_size_px = size;
  rc.crop_window_nm = clip_process_.crop_window_nm;
  const double clip_extent = clip_process_.grid.extent_nm;
  const double crop = rc.crop_window_nm;
  const double crop_px_nm = crop / static_cast<double>(size);
  st.clip.extent_nm = clip_extent;

  const std::size_t total = tiles();
  for (std::size_t tile = 0; tile < total; ++tile) {
    const obs::Span span("chip.tile");
    const geometry::Rect window = tile_window(tile % tiles_x_, tile / tiles_x_);
    layout_.query(window, st.idx);

    std::size_t n_results = 0;
    std::size_t lane = 0;
    double stitch_s = 0.0;

    const auto flush = [&] {
      if (lane == 0) return;
      {
        const obs::Span infer_span("chip.infer");
        model.predict_batch_into(
            std::span<const data::Sample* const>(st.sample_ptrs.data(), lane),
            std::span<image::Image* const>(st.output_ptrs.data(), lane),
            st.scratch);
      }
      const obs::Span stitch_span("chip.stitch");
      util::Timer timer;
      for (std::size_t l = 0; l < lane; ++l) {
        const std::uint32_t ci = st.lane_contact[l];
        const geometry::Point center = layout_.contacts()[ci].drawn.center();
        if (n_results == results_.size()) results_.emplace_back();
        ContactResult& r = results_[n_results];
        ++n_results;
        r.contact = ci;
        r.contour.clear();

        const image::Image& img = st.outputs[l];
        const std::size_t s = img.height();
        st.grid.resize(s * s);
        const std::span<const float> ch = img.channel(0);
        for (std::size_t p = 0; p < s * s; ++p) {
          st.grid[p] = static_cast<double>(ch[p]);
        }
        const std::size_t found =
            geometry::extract_contours_into(st.grid, s, s, 0.5, st.contours, st.pool);
        // The predicted blob can sit off the drawn center (that is the
        // signal the center CNN learns), so take the dominant contour, not
        // the one under the drawn center.
        const geometry::Polygon* best = nullptr;
        double best_area = 0.0;
        for (std::size_t c = 0; c < found; ++c) {
          const double a = st.pool[c].area();
          if (best == nullptr || a > best_area) {
            best_area = a;
            best = &st.pool[c];
          }
        }
        if (best != nullptr && best->size() >= 3) {
          // Grid index g maps to chip nm at center - crop/2 + (g+0.5)*px.
          const geometry::Point off{center.x - crop / 2.0 + 0.5 * crop_px_nm,
                                    center.y - crop / 2.0 + 0.5 * crop_px_nm};
          r.printed = true;
          for (const geometry::Point& p : best->vertices()) {
            r.contour.push_back({off.x + p.x * crop_px_nm, off.y + p.y * crop_px_nm});
          }
          const geometry::Rect box = best->bounding_box();
          r.cd_width_nm = box.width() * crop_px_nm;
          r.cd_height_nm = box.height() * crop_px_nm;
          r.center_nm = {off.x + box.center().x * crop_px_nm,
                         off.y + box.center().y * crop_px_nm};
        } else {
          r.printed = false;
          r.cd_width_nm = 0.0;
          r.cd_height_nm = 0.0;
          r.center_nm = center;
        }
      }
      stitch_s += timer.elapsed_seconds();
      lane = 0;
    };

    for (const std::uint32_t i : st.idx) {
      const ChipContact& contact = layout_.contacts()[i];
      const geometry::Point center = contact.drawn.center();
      if (owner_tile(center) != tile) continue;
      // Clip-local frame: origin at center - extent/2, target exactly
      // centered — the distribution the model trained on.
      const geometry::Point off{clip_extent / 2.0 - center.x,
                                clip_extent / 2.0 - center.y};
      st.clip.target = contact.drawn.translated(off);
      st.clip.target_opc = contact.opc.translated(off);
      st.clip.neighbors.clear();
      st.clip.neighbors_opc.clear();
      st.clip.srafs.clear();
      const geometry::Rect clip_window{{center.x - clip_extent / 2.0,
                                        center.y - clip_extent / 2.0},
                                       {center.x + clip_extent / 2.0,
                                        center.y + clip_extent / 2.0}};
      layout_.query(clip_window, st.nidx);
      for (const std::uint32_t j : st.nidx) {
        if (j == i) continue;
        st.clip.neighbors.push_back(layout_.contacts()[j].drawn.translated(off));
        st.clip.neighbors_opc.push_back(layout_.contacts()[j].opc.translated(off));
      }
      data::Sample& sample = st.samples[lane];
      data::render_mask_into(st.clip, rc, sample.mask_rgb);
      sample.resist_pixel_nm = crop_px_nm;
      st.lane_contact[lane] = i;
      ++lane;
      if (lane == batch) flush();
    }
    flush();

    sink(tile, std::span<const ContactResult>(results_.data(), n_results));
    tiles_counter().add();
    contacts_counter().add(n_results);
    stitch_histogram().observe(stitch_s * 1000.0);
    ++stats_.tiles_run;
    stats_.contacts_done += n_results;
  }
}

std::size_t ChipPipeline::collect_ring_bytes() const {
  std::size_t bytes = 0;
  for (const GoldenSlot& s : slots_) {
    bytes += s.idx.capacity() * sizeof(std::uint32_t);
    bytes += s.openings.capacity() * sizeof(geometry::Rect);
    bytes += (s.result.aerial.values.capacity() + s.result.latent.values.capacity() +
              s.result.develop.values.capacity()) *
             sizeof(double);
    for (const geometry::Polygon& c : s.result.contours) {
      bytes += c.vertices().capacity() * sizeof(geometry::Point);
    }
  }
  for (const ContactResult& r : results_) {
    bytes += r.contour.vertices().capacity() * sizeof(geometry::Point);
  }
  return bytes;
}

}  // namespace lithogan::chip
