#include "chip/layout.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "layout/opc.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lithogan::chip {

void ChipConfig::validate() const {
  LITHOGAN_REQUIRE(chip_nm > 0.0, "chip_nm must be positive");
  LITHOGAN_REQUIRE(tile_extent_nm > 0.0, "tile_extent_nm must be positive");
  LITHOGAN_REQUIRE(tile_pixels >= 2, "tile_pixels too small");
  LITHOGAN_REQUIRE(halo_lobes > 0.0, "halo_lobes must be positive");
  LITHOGAN_REQUIRE(ring_depth >= 1, "ring_depth must be at least 1");
  LITHOGAN_REQUIRE(infer_batch >= 1, "infer_batch must be at least 1");
  LITHOGAN_REQUIRE(cell_nm > 0.0 && cell_nm <= chip_nm, "cell_nm out of range");
  LITHOGAN_REQUIRE(occupancy > 0.0 && occupancy <= 1.0, "occupancy out of range");
  LITHOGAN_REQUIRE(position_jitter_nm >= 0.0, "negative jitter");
}

namespace {

/// Contact-center margin from the cell border: keeps every rectangle inside
/// its cell and makes worst-case cross-cell center spacing >= min_pitch.
double cell_margin(const litho::ProcessConfig& process) {
  return process.min_pitch_nm / 2.0 + process.contact_size_nm;
}

}  // namespace

ChipLayout::ChipLayout(const litho::ProcessConfig& process, const ChipConfig& config)
    : process_(process), config_(config) {
  config_.validate();
  cells_x_ = static_cast<std::size_t>(std::ceil(config_.chip_nm / config_.cell_nm));
  cells_y_ = cells_x_;

  const double margin = cell_margin(process_);
  const double half_usable = config_.cell_nm / 2.0 - margin;
  LITHOGAN_REQUIRE(half_usable >= 0.0, "cell_nm too small for the process margin");

  std::vector<std::pair<std::uint32_t, geometry::Rect>> placed;
  placed.reserve(cells_x_ * cells_y_ * 4);
  for (std::size_t cy = 0; cy < cells_y_; ++cy) {
    for (std::size_t cx = 0; cx < cells_x_; ++cx) {
      const auto cell = static_cast<std::uint32_t>(cy * cells_x_ + cx);
      // Per-cell stream: the group drawn here depends only on (seed, cell),
      // never on neighboring cells or on how the chip gets tiled later.
      util::Rng rng(config_.seed, cell);
      const geometry::Point center{
          (static_cast<double>(cx) + 0.5) * config_.cell_nm,
          (static_cast<double>(cy) + 0.5) * config_.cell_nm};

      const auto place = [&](geometry::Point site) {
        const double j = config_.position_jitter_nm;
        if (j > 0.0) {
          site.x += rng.uniform(-j, j);
          site.y += rng.uniform(-j, j);
        }
        if (std::abs(site.x - center.x) > half_usable ||
            std::abs(site.y - center.y) > half_usable) {
          return;  // clipped against the cell's safe region
        }
        placed.emplace_back(cell, geometry::Rect::from_center(
                                      site, process_.contact_size_nm,
                                      process_.contact_size_nm));
      };

      switch (rng.uniform_int(0, 2)) {
        case 0: {  // isolated
          place(center);
          break;
        }
        case 1: {  // row
          const double pitch =
              process_.min_pitch_nm * rng.uniform(1.0, 1.6);
          const bool horizontal = rng.bernoulli(0.5);
          const auto half_len = static_cast<int>(rng.uniform_int(1, 3));
          for (int k = -half_len; k <= half_len; ++k) {
            if (k != 0 && !rng.bernoulli(config_.occupancy)) continue;
            const double off = static_cast<double>(k) * pitch;
            place(horizontal ? geometry::Point{center.x + off, center.y}
                             : geometry::Point{center.x, center.y + off});
          }
          break;
        }
        default: {  // grid
          const double pitch_x = process_.min_pitch_nm * rng.uniform(1.0, 1.6);
          const double pitch_y = process_.min_pitch_nm * rng.uniform(1.0, 1.6);
          for (int ky = -1; ky <= 1; ++ky) {
            for (int kx = -1; kx <= 1; ++kx) {
              if ((kx != 0 || ky != 0) && !rng.bernoulli(config_.occupancy)) continue;
              place({center.x + static_cast<double>(kx) * pitch_x,
                     center.y + static_cast<double>(ky) * pitch_y});
            }
          }
          break;
        }
      }
    }
  }
  index_and_bias(std::move(placed));
}

ChipLayout::ChipLayout(const litho::ProcessConfig& process, const ChipConfig& config,
                       std::vector<geometry::Rect> drawn)
    : process_(process), config_(config) {
  config_.validate();
  cells_x_ = static_cast<std::size_t>(std::ceil(config_.chip_nm / config_.cell_nm));
  cells_y_ = cells_x_;
  std::vector<std::pair<std::uint32_t, geometry::Rect>> placed;
  placed.reserve(drawn.size());
  for (const auto& r : drawn) {
    const geometry::Point c = r.center();
    LITHOGAN_REQUIRE(c.x >= 0.0 && c.x < config_.chip_nm && c.y >= 0.0 &&
                         c.y < config_.chip_nm,
                     "contact center outside the chip");
    const auto cx = static_cast<std::size_t>(c.x / config_.cell_nm);
    const auto cy = static_cast<std::size_t>(c.y / config_.cell_nm);
    placed.emplace_back(static_cast<std::uint32_t>(
                            std::min(cy, cells_y_ - 1) * cells_x_ +
                            std::min(cx, cells_x_ - 1)),
                        r);
  }
  index_and_bias(std::move(placed));
}

void ChipLayout::index_and_bias(
    std::vector<std::pair<std::uint32_t, geometry::Rect>> placed) {
  // Cell-major storage: stable sort keeps the per-cell generation order, so
  // contact indices are deterministic and queries return ascending runs.
  std::stable_sort(placed.begin(), placed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  const std::size_t cells = cells_x_ * cells_y_;
  contacts_.clear();
  contacts_.reserve(placed.size());
  drawn_rects_.clear();
  drawn_rects_.reserve(placed.size());
  cell_start_.assign(cells + 1, 0);
  for (const auto& [cell, rect] : placed) {
    ++cell_start_[cell + 1];
    ChipContact c;
    c.drawn = rect;
    c.cell = cell;
    contacts_.push_back(c);
    drawn_rects_.push_back(rect);
  }
  for (std::size_t i = 0; i < cells; ++i) cell_start_[i + 1] += cell_start_[i];

  // Rule-OPC pass: exactly layout::OpcEngine's density rule, with the
  // neighborhood gathered across cell boundaries via the index itself.
  const layout::OpcConfig opc;
  std::vector<geometry::Rect> others;
  std::vector<std::uint32_t> near;
  for (auto& contact : contacts_) {
    const geometry::Rect reach =
        geometry::Rect::from_center(contact.drawn.center(),
                                    2.0 * opc.rule_dense_radius_nm,
                                    2.0 * opc.rule_dense_radius_nm);
    query_drawn(reach, near);
    others.clear();
    for (const std::uint32_t i : near) others.push_back(drawn_rects_[i]);
    contact.opc = layout::OpcEngine::rule_biased(contact.drawn, others, opc);
  }
}

namespace {

/// Applies `keep(index)` to every contact in the cells covering `window`,
/// in ascending contact order (cell-major storage + ascending cell walk).
template <typename Keep>
void for_cells(const geometry::Rect& window, double cell, std::size_t cells_x,
               std::size_t cells_y, const std::vector<std::uint32_t>& cell_start,
               const Keep& keep) {
  const auto clamp_cell = [&](double v, std::size_t count) {
    const double c = std::floor(v / cell);
    if (c < 0.0) return static_cast<std::size_t>(0);
    return std::min(static_cast<std::size_t>(c), count - 1);
  };
  const std::size_t x0 = clamp_cell(window.lo.x, cells_x);
  const std::size_t x1 = clamp_cell(window.hi.x, cells_x);
  const std::size_t y0 = clamp_cell(window.lo.y, cells_y);
  const std::size_t y1 = clamp_cell(window.hi.y, cells_y);
  for (std::size_t cy = y0; cy <= y1; ++cy) {
    for (std::size_t cx = x0; cx <= x1; ++cx) {
      const std::size_t c = cy * cells_x + cx;
      for (std::uint32_t i = cell_start[c]; i < cell_start[c + 1]; ++i) keep(i);
    }
  }
}

}  // namespace

void ChipLayout::query(const geometry::Rect& window,
                       std::vector<std::uint32_t>& out) const {
  out.clear();
  for_cells(window, config_.cell_nm, cells_x_, cells_y_, cell_start_,
            [&](std::uint32_t i) {
              if (contacts_[i].opc.intersects(window)) out.push_back(i);
            });
}

void ChipLayout::query_drawn(const geometry::Rect& window,
                             std::vector<std::uint32_t>& out) const {
  out.clear();
  for_cells(window, config_.cell_nm, cells_x_, cells_y_, cell_start_,
            [&](std::uint32_t i) {
              if (window.contains(contacts_[i].drawn.center())) out.push_back(i);
            });
}

}  // namespace lithogan::chip
