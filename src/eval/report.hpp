// Aggregating per-sample metrics into the rows of the paper's Table 3 and
// printing aligned comparison tables for the bench harnesses.
#pragma once

#include <string>
#include <vector>

#include "eval/metrics.hpp"

namespace lithogan::eval {

/// One Table-3 row: a method evaluated over a test set.
struct MethodReport {
  std::string method;
  std::string dataset;
  double ede_mean_nm = 0.0;
  double ede_std_nm = 0.0;
  double pixel_accuracy = 0.0;
  double class_accuracy = 0.0;
  double mean_iou = 0.0;
  std::size_t sample_count = 0;
  std::size_t invalid_count = 0;  ///< samples where EDE was undefined
};

/// Accumulates per-sample results and finalizes a MethodReport.
class MetricAccumulator {
 public:
  MetricAccumulator(std::string method, std::string dataset, double pixel_nm);

  /// Adds one golden/predicted pair. `pixel_nm` from construction converts
  /// the EDE to nanometres.
  void add(const image::Image& golden, const image::Image& predicted);

  MethodReport finalize() const;

  /// Per-sample mean-EDE values (nm), e.g. for the Figure 7 histogram.
  const std::vector<double>& ede_samples_nm() const { return ede_nm_; }

 private:
  std::string method_;
  std::string dataset_;
  double pixel_nm_;
  std::vector<double> ede_nm_;
  std::vector<double> pixel_acc_;
  std::vector<double> class_acc_;
  std::vector<double> iou_;
  std::size_t invalid_ = 0;
};

/// Renders reports as an aligned text table (same columns as Table 3).
std::string format_table3(const std::vector<MethodReport>& reports);

}  // namespace lithogan::eval
