#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "data/render.hpp"
#include "image/connected_components.hpp"
#include "util/error.hpp"

namespace lithogan::eval {

PixelMetrics pixel_metrics(const image::Image& golden, const image::Image& predicted) {
  LITHOGAN_REQUIRE(golden.channels() == 1 && predicted.channels() == 1 &&
                       golden.height() == predicted.height() &&
                       golden.width() == predicted.width(),
                   "pixel_metrics image mismatch");
  const auto g = golden.to_mask(0);
  const auto p = predicted.to_mask(0);

  // Confusion counts: n[i][j] = pixels of true class i predicted as j.
  double n[2][2] = {{0.0, 0.0}, {0.0, 0.0}};
  for (std::size_t i = 0; i < g.size(); ++i) {
    n[g[i]][p[i]] += 1.0;
  }
  const double t0 = n[0][0] + n[0][1];
  const double t1 = n[1][0] + n[1][1];
  const double total = t0 + t1;

  PixelMetrics m;
  m.pixel_accuracy = total > 0 ? (n[0][0] + n[1][1]) / total : 1.0;

  const auto class_acc = [&](int c) {
    const double t = c == 0 ? t0 : t1;
    if (t == 0.0) return 1.0;  // class absent from ground truth
    return n[c][c] / t;
  };
  m.class_accuracy = (class_acc(0) + class_acc(1)) / 2.0;

  const auto iou = [&](int c) {
    const double t = c == 0 ? t0 : t1;
    const double pred_c = n[0][c] + n[1][c];
    const double uni = t + pred_c - n[c][c];
    if (uni == 0.0) return 1.0;  // class absent from both
    return n[c][c] / uni;
  };
  m.mean_iou = (iou(0) + iou(1)) / 2.0;
  return m;
}

namespace {
/// Bounding box (inclusive pixel indices) of the largest blob; returns an
/// empty rect when nothing is set.
geometry::Rect pattern_bbox(const image::Image& img) {
  const auto mask = img.to_mask(0);
  const auto labeling = image::label_components(mask, img.width(), img.height());
  const auto* blob = image::largest_component(labeling);
  return blob == nullptr ? geometry::Rect::empty() : blob->bbox;
}
}  // namespace

double EdeResult::max() const { return std::max({left, right, top, bottom}); }

EdeResult edge_displacement_error(const image::Image& golden,
                                  const image::Image& predicted) {
  LITHOGAN_REQUIRE(golden.height() == predicted.height() &&
                       golden.width() == predicted.width(),
                   "EDE image mismatch");
  EdeResult r;
  const geometry::Rect gb = pattern_bbox(golden);
  const geometry::Rect pb = pattern_bbox(predicted);
  if (gb.is_empty() || pb.is_empty()) return r;
  r.left = std::abs(gb.lo.x - pb.lo.x);
  r.right = std::abs(gb.hi.x - pb.hi.x);
  r.bottom = std::abs(gb.lo.y - pb.lo.y);
  r.top = std::abs(gb.hi.y - pb.hi.y);
  r.valid = true;
  return r;
}

double center_error(const image::Image& golden, const image::Image& predicted) {
  const geometry::Point g = data::pattern_center(golden);
  const geometry::Point p = data::pattern_center(predicted);
  return geometry::distance(g, p);
}

double EpeResult::max() const { return std::max({left, right, top, bottom}); }

EpeResult edge_placement_error(const image::Image& printed,
                               const geometry::Rect& target_px) {
  LITHOGAN_REQUIRE(!target_px.is_empty(), "EPE needs a non-empty target");
  EpeResult r;
  const geometry::Rect pb = pattern_bbox(printed);
  if (pb.is_empty()) return r;
  // pattern_bbox returns inclusive pixel indices; convert to pixel-edge
  // coordinates so widths are comparable with the drawn target.
  const geometry::Rect printed_box{{pb.lo.x, pb.lo.y}, {pb.hi.x + 1.0, pb.hi.y + 1.0}};
  r.left = std::abs(printed_box.lo.x - target_px.lo.x);
  r.right = std::abs(printed_box.hi.x - target_px.hi.x);
  r.bottom = std::abs(printed_box.lo.y - target_px.lo.y);
  r.top = std::abs(printed_box.hi.y - target_px.hi.y);
  r.valid = true;
  return r;
}

}  // namespace lithogan::eval
