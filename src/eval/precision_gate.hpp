// Accuracy gate for reduced-precision inference plans.
//
// A reduced-precision InferencePlan (nn::InferencePlan::Precision = f16 /
// bf16 / i8) trades weight bytes and GEMM bandwidth for rounding error. The
// gate quantifies that error against the fp32 plan on the *evaluation*
// metrics the reproduction actually reports — mean IoU and center error of
// the binarized resist images (eval::pixel_metrics / eval::center_error) —
// plus the raw max |delta| on the pre-threshold tanh outputs, which is the
// robust signal when outputs hover near the 0.5 binarization threshold
// (untrained weights do).
//
// Shared header-only helper: tools/accuracy_gate runs it standalone,
// bench/infer_latency gates its per-precision timing rows with it.
//
// Per-dtype default tolerances (see EXPERIMENTS.md for the calibration) can
// be overridden with LITHOGAN_ACC_MIN_IOU / LITHOGAN_ACC_MAX_CENTER /
// LITHOGAN_ACC_MAX_ABS; an override applies to every dtype, so exporting
// zeros is the "tolerance 0" hard mode that any rounding at all fails.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "data/batch.hpp"
#include "eval/metrics.hpp"
#include "math/half.hpp"
#include "nn/tensor.hpp"

namespace lithogan::eval {

/// Pass/fail thresholds for one reduced-precision comparison.
struct GateTolerance {
  double min_iou = 0.0;     ///< mean IoU of binarized outputs must be >= this
  double max_center = 0.0;  ///< worst per-sample center error (px) must be <=
  double max_abs = 0.0;     ///< max |reduced - fp32| on raw outputs must be <=
};

/// Default tolerance for `dtype` with env overrides applied. f32 demands
/// exactness (the default plan is bit-identical to eval-mode forward); the
/// reduced dtypes widen with the storage error: fp16 keeps 11 significand
/// bits, bf16 8, int8 roughly 7 bits spread over each channel's range.
inline GateTolerance gate_tolerance(math::Dtype dtype) {
  GateTolerance tol;
  switch (dtype) {
    case math::Dtype::kF32:
      tol = {1.0, 0.0, 0.0};
      break;
    case math::Dtype::kF16:
      tol = {0.98, 2.0, 0.02};
      break;
    case math::Dtype::kBF16:
      tol = {0.90, 4.0, 0.10};
      break;
    case math::Dtype::kI8:
      tol = {0.85, 6.0, 0.25};
      break;
  }
  if (const char* env = std::getenv("LITHOGAN_ACC_MIN_IOU")) {
    tol.min_iou = std::atof(env);
  }
  if (const char* env = std::getenv("LITHOGAN_ACC_MAX_CENTER")) {
    tol.max_center = std::atof(env);
  }
  if (const char* env = std::getenv("LITHOGAN_ACC_MAX_ABS")) {
    tol.max_abs = std::atof(env);
  }
  return tol;
}

/// Measured deltas between a reference (fp32) and a reduced-precision
/// generator output batch.
struct GateResult {
  double mean_iou = 1.0;    ///< mean over samples of binarized mean IoU
  double max_center = 0.0;  ///< worst per-sample center error, px
  double max_abs = 0.0;     ///< max |delta| over every raw output element
  std::size_t samples = 0;

  bool pass(const GateTolerance& tol) const {
    return mean_iou >= tol.min_iou && max_center <= tol.max_center &&
           max_abs <= tol.max_abs;
  }
};

/// Compares two (N, 1, H, W) generator outputs in [-1, 1], `ref` acting as
/// golden. Throws (via tensor_to_resist_image) on shape mismatch.
inline GateResult compare_outputs(const nn::Tensor& ref, const nn::Tensor& test) {
  GateResult r;
  r.samples = ref.dim(0);
  double iou_sum = 0.0;
  for (std::size_t n = 0; n < r.samples; ++n) {
    const image::Image golden = data::tensor_to_resist_image(ref, n);
    const image::Image predicted = data::tensor_to_resist_image(test, n);
    iou_sum += pixel_metrics(golden, predicted).mean_iou;
    r.max_center = std::max(r.max_center, center_error(golden, predicted));
  }
  r.mean_iou = r.samples > 0 ? iou_sum / static_cast<double>(r.samples) : 1.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    r.max_abs = std::max(r.max_abs, static_cast<double>(std::fabs(ref[i] - test[i])));
  }
  return r;
}

}  // namespace lithogan::eval
