// The paper's evaluation metrics (Sec. 2): edge displacement error (Def. 1)
// between golden and predicted contours, plus the segmentation metrics —
// pixel accuracy (Def. 2), class accuracy (Def. 3) and mean IoU (Def. 4).
#pragma once

#include "image/image.hpp"

namespace lithogan::eval {

/// Segmentation metrics between two monochrome {0,1} images of equal size.
struct PixelMetrics {
  double pixel_accuracy = 0.0;  ///< (sum_i p_ii) / (sum_i t_i)
  double class_accuracy = 0.0;  ///< (1/2) sum_i p_ii / t_i
  double mean_iou = 0.0;        ///< (1/2) sum_i p_ii / (t_i - p_ii + sum_j p_ji)
};

/// Computes Defs. 2-4 treating `golden` as ground truth. Classes are pixel
/// colors {0, 1} after thresholding at 0.5. A class absent from both images
/// counts as perfectly predicted (accuracy/IoU 1 for that class).
PixelMetrics pixel_metrics(const image::Image& golden, const image::Image& predicted);

/// Edge displacement error (Def. 1): per-edge distances between the golden
/// and predicted pattern bounding boxes.
struct EdeResult {
  double left = 0.0;    ///< |golden.left - predicted.left|, pixels
  double right = 0.0;
  double top = 0.0;
  double bottom = 0.0;
  bool valid = false;   ///< false when either image has no pattern

  double mean() const { return (left + right + top + bottom) / 4.0; }
  double max() const;
};

/// EDE in pixel units; multiply by the pixel pitch (nm) for physical error.
/// The bounding box of the largest connected component is used on each side
/// so stray predicted specks don't dominate.
EdeResult edge_displacement_error(const image::Image& golden,
                                  const image::Image& predicted);

/// Euclidean distance between golden and predicted pattern centers (pixels)
/// — the CNN center-prediction error of Sec. 4.1.
double center_error(const image::Image& golden, const image::Image& predicted);

/// Edge placement error (Sec. 2): unlike EDE, EPE compares a printed
/// contour against the *design target*, at measurement points on the
/// target's edges. Measurement points are the midpoints of the four target
/// edges; the error per point is the Manhattan distance along the edge
/// normal to the printed contour's bounding box.
struct EpeResult {
  double left = 0.0;
  double right = 0.0;
  double top = 0.0;
  double bottom = 0.0;
  bool valid = false;

  double mean() const { return (left + right + top + bottom) / 4.0; }
  double max() const;
};

/// EPE of a printed contour (largest blob of `printed`) against an
/// axis-aligned design target given in the same pixel coordinates.
EpeResult edge_placement_error(const image::Image& printed,
                               const geometry::Rect& target_px);

}  // namespace lithogan::eval
