#include "eval/report.hpp"

#include <sstream>

#include "math/statistics.hpp"
#include "util/strings.hpp"

namespace lithogan::eval {

MetricAccumulator::MetricAccumulator(std::string method, std::string dataset,
                                     double pixel_nm)
    : method_(std::move(method)), dataset_(std::move(dataset)), pixel_nm_(pixel_nm) {}

void MetricAccumulator::add(const image::Image& golden, const image::Image& predicted) {
  const EdeResult ede = edge_displacement_error(golden, predicted);
  if (ede.valid) {
    ede_nm_.push_back(ede.mean() * pixel_nm_);
  } else {
    ++invalid_;
  }
  const PixelMetrics pm = pixel_metrics(golden, predicted);
  pixel_acc_.push_back(pm.pixel_accuracy);
  class_acc_.push_back(pm.class_accuracy);
  iou_.push_back(pm.mean_iou);
}

MethodReport MetricAccumulator::finalize() const {
  MethodReport r;
  r.method = method_;
  r.dataset = dataset_;
  r.ede_mean_nm = math::mean(ede_nm_);
  r.ede_std_nm = math::stddev(ede_nm_);
  r.pixel_accuracy = math::mean(pixel_acc_);
  r.class_accuracy = math::mean(class_acc_);
  r.mean_iou = math::mean(iou_);
  r.sample_count = pixel_acc_.size();
  r.invalid_count = invalid_;
  return r;
}

std::string format_table3(const std::vector<MethodReport>& reports) {
  using util::format_fixed;
  using util::pad_left;
  using util::pad_right;
  std::ostringstream oss;
  oss << pad_right("Dataset", 10) << pad_right("Method", 16) << pad_left("EDE (nm)", 10)
      << pad_left("Std.", 8) << pad_left("PixAcc", 9) << pad_left("ClassAcc", 10)
      << pad_left("MeanIoU", 9) << pad_left("N", 6) << "\n";
  oss << std::string(78, '-') << "\n";
  for (const auto& r : reports) {
    oss << pad_right(r.dataset, 10) << pad_right(r.method, 16)
        << pad_left(format_fixed(r.ede_mean_nm, 2), 10)
        << pad_left(format_fixed(r.ede_std_nm, 2), 8)
        << pad_left(format_fixed(r.pixel_accuracy, 3), 9)
        << pad_left(format_fixed(r.class_accuracy, 3), 10)
        << pad_left(format_fixed(r.mean_iou, 3), 9)
        << pad_left(std::to_string(r.sample_count), 6);
    if (r.invalid_count > 0) {
      oss << "  (+" << r.invalid_count << " unprinted)";
    }
    oss << "\n";
  }
  return oss.str();
}

}  // namespace lithogan::eval
