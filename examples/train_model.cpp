// Full training CLI: train a LithoGAN (or plain CGAN) on a dataset file
// produced by examples/generate_dataset, with every paper hyperparameter
// exposed as a flag, then evaluate on the held-out split and checkpoint.
//
//   ./generate_dataset --clips 200 --out n10
//   ./train_model --dataset n10.ds --epochs 40 --save model/n10
#include <cstdio>

#include "core/lithogan.hpp"
#include "data/dataset.hpp"
#include "eval/report.hpp"
#include "math/gemm.hpp"
#include "util/cli.hpp"
#include "util/exec_context.hpp"
#include "util/fileio.hpp"
#include "util/logging.hpp"
#include "util/obs_cli.hpp"

using namespace lithogan;

int main(int argc, char** argv) {
  util::CliParser cli("Train LithoGAN / CGAN on a .ds dataset file.");
  cli.add_flag("dataset", "dataset.ds", "path to a dataset from generate_dataset")
      .add_flag("mode", "lithogan", "lithogan (dual learning) or cgan (plain)")
      .add_flag("arch", "encdec", "generator architecture: encdec or unet")
      .add_flag("epochs", "40", "GAN epochs (paper: 80)")
      .add_flag("center-epochs", "50", "center-CNN epochs")
      .add_flag("batch", "4", "batch size (paper: 4)")
      .add_flag("lambda", "100", "l1 weight in Eq. 3 (paper: 100)")
      .add_flag("lr", "0.0002", "Adam learning rate (paper: 2e-4)")
      .add_flag("beta1", "0.5", "Adam beta1 (paper: 0.5)")
      .add_flag("base-channels", "12", "first conv width (paper: 64)")
      .add_flag("max-channels", "48", "channel cap (paper: 512)")
      .add_flag("l2", "false", "use l2 reconstruction instead of l1")
      .add_flag("seed", "1", "RNG seed")
      .add_flag("train-fraction", "0.75", "train split fraction (paper: 0.75)")
      .add_flag("save", "", "checkpoint prefix (empty = do not save)")
      .add_flag("threads", "0", "worker threads (0 = all cores, 1 = serial)");
  util::add_obs_flags(cli);
  if (!cli.parse(argc, argv)) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  const util::ObsOptions obs = util::begin_observability(cli);

  const data::Dataset dataset = data::load_dataset(cli.get("dataset"));
  std::printf("loaded %s: %zu samples, %s, %zu px\n", cli.get("dataset").c_str(),
              dataset.size(), dataset.process_name.c_str(),
              dataset.render.mask_size_px);

  core::LithoGanConfig config = core::LithoGanConfig::paper();
  config.image_size = dataset.render.mask_size_px;
  config.base_channels = static_cast<std::size_t>(cli.get_int("base-channels"));
  config.max_channels = static_cast<std::size_t>(cli.get_int("max-channels"));
  config.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  config.center_epochs = static_cast<std::size_t>(cli.get_int("center-epochs"));
  config.batch_size = static_cast<std::size_t>(cli.get_int("batch"));
  config.lambda_l1 = static_cast<float>(cli.get_double("lambda"));
  config.learning_rate = static_cast<float>(cli.get_double("lr"));
  config.adam_beta1 = static_cast<float>(cli.get_double("beta1"));
  config.use_l2_reconstruction = cli.get_bool("l2");
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  util::ExecContext exec(static_cast<std::size_t>(cli.get_int("threads")));
  config.exec = &exec;

  const core::Mode mode =
      cli.get("mode") == "cgan" ? core::Mode::kPlainCgan : core::Mode::kDualLearning;
  const core::GeneratorArch arch = cli.get("arch") == "unet"
                                       ? core::GeneratorArch::kUNet
                                       : core::GeneratorArch::kEncoderDecoder;

  util::Rng split_rng(config.seed + 100);
  const data::Split split =
      data::split_dataset(dataset, cli.get_double("train-fraction"), split_rng);

  core::LithoGan model(config, mode, arch);
  const auto curves = model.train(dataset, split.train);
  std::printf("final losses: G %.3f  D %.3f  l1 %.4f\n", curves.back().generator,
              curves.back().discriminator, curves.back().l1);

  eval::MetricAccumulator acc(cli.get("mode"), dataset.process_name,
                              dataset.samples[0].resist_pixel_nm);
  for (const std::size_t i : split.test) {
    acc.add(dataset.samples[i].resist, model.predict(dataset.samples[i]));
  }
  std::printf("\n%s\n", eval::format_table3({acc.finalize()}).c_str());

  if (mode == core::Mode::kDualLearning) {
    const double px = model.center().evaluate_pixels(dataset, split.test);
    std::printf("center-CNN error: %.3f px = %.2f nm\n", px,
                px * dataset.samples[0].resist_pixel_nm);
  }

  const std::string save = cli.get("save");
  if (!save.empty()) {
    const auto slash = save.find_last_of('/');
    if (slash != std::string::npos) util::make_directories(save.substr(0, slash));
    model.save(save);
    std::printf("checkpoint written to %s.{gen,dis%s}.bin\n", save.c_str(),
                mode == core::Mode::kDualLearning ? ",cnn" : "");
  }
  util::finish_observability(obs, math::simd_level());
  return 0;
}
