// Dataset generation walkthrough — the substrate the paper's Section 3.1
// describes, stage by stage:
//
//   clip synthesis -> SRAF insertion -> OPC -> rigorous simulation ->
//   color-encoded mask image + golden resist crop
//
// Writes a reusable .ds dataset file plus per-stage visualizations for the
// first few clips, so you can inspect exactly what the networks consume.
#include <cstdio>

#include "data/dataset.hpp"
#include "data/statistics.hpp"
#include "geometry/marching_squares.hpp"
#include "image/io.hpp"
#include "math/gemm.hpp"
#include "util/cli.hpp"
#include "util/exec_context.hpp"
#include "util/fileio.hpp"
#include "util/logging.hpp"
#include "util/obs_cli.hpp"

using namespace lithogan;

namespace {

/// Normalizes a field grid to [0,1] for visualization.
image::Image field_to_image(const litho::FieldGrid& field) {
  image::Image img(1, field.pixels, field.pixels);
  double hi = 1e-12;
  for (const double v : field.values) hi = std::max(hi, v);
  for (std::size_t i = 0; i < field.values.size(); ++i) {
    img.data()[i] = static_cast<float>(std::max(0.0, field.values[i]) / hi);
  }
  return img;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("Generate a LithoGAN dataset and stage visualizations.");
  cli.add_flag("node", "N10", "process node: N10 or N7")
      .add_flag("clips", "60", "number of clips")
      .add_flag("image-size", "64", "mask/resist image resolution")
      .add_flag("grid", "128", "simulation grid resolution (power of two)")
      .add_flag("out", "dataset", "output prefix: <out>.ds plus stage images")
      .add_flag("visualize", "3", "clips to dump stage images for")
      .add_flag("threads", "0", "worker threads (0 = all cores, 1 = serial)");
  util::add_obs_flags(cli);
  if (!cli.parse(argc, argv)) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  const util::ObsOptions obs = util::begin_observability(cli);

  litho::ProcessConfig process = cli.get("node") == "N7" ? litho::ProcessConfig::n7()
                                                         : litho::ProcessConfig::n10();
  process.grid.pixels = static_cast<std::size_t>(cli.get_int("grid"));
  // With an ExecContext on the process, DatasetBuilder::build fans whole
  // clips out across the pool (each worker simulating through its own
  // serial-inner clone); the dataset is byte-identical at any --threads.
  util::ExecContext exec(static_cast<std::size_t>(cli.get_int("threads")));
  process.exec = &exec;

  data::BuildConfig build;
  build.clip_count = static_cast<std::size_t>(cli.get_int("clips"));
  build.render.mask_size_px = static_cast<std::size_t>(cli.get_int("image-size"));
  build.render.resist_size_px = build.render.mask_size_px;

  data::DatasetBuilder builder(process, build, util::Rng(2024));

  // Stage-by-stage dump for the first few clips, using the builder's own
  // simulator so the visualization matches the dataset exactly.
  const auto n_vis = static_cast<std::size_t>(cli.get_int("visualize"));
  layout::ClipGenerator generator(process, {}, util::Rng(515151));
  layout::SrafInserter sraf(process, {});
  layout::OpcEngine opc({});
  const std::string prefix = cli.get("out");
  for (std::size_t k = 0; k < n_vis; ++k) {
    layout::MaskClip clip = generator.generate();
    std::printf("clip %zu (%s): %zu neighbors", k,
                layout::to_string(clip.array_type).c_str(), clip.neighbors.size());

    sraf.insert(clip);
    std::printf(", %zu SRAFs", clip.srafs.size());
    opc.run_model_based(clip, builder.simulator());

    const auto result = builder.simulator().run(clip.all_openings());
    const auto contour = geometry::contour_at(result.contours, clip.center());
    const auto cd = litho::measure_cd(result.contours, clip.center());
    std::printf(", prints %.1f x %.1f nm\n", cd.width_nm, cd.height_nm);

    const std::string base = prefix + "_stage" + std::to_string(k);
    image::write_ppm(base + "_mask.ppm",
                     data::render_mask(clip, build.render));
    image::write_pgm(base + "_aerial.pgm", field_to_image(result.aerial));
    const auto golden = data::render_golden(contour, clip.center(), build.render);
    image::write_pgm(base + "_golden.pgm", golden.resist);
    std::printf("  wrote %s_{mask.ppm,aerial.pgm,golden.pgm}\n", base.c_str());
  }

  std::printf("building the full dataset (%zu clips)...\n", build.clip_count);
  const data::Dataset dataset = builder.build();
  const std::string ds_path = prefix + ".ds";
  data::save_dataset(dataset, ds_path);
  std::printf("wrote %s (%zu samples, %s, %zux%zu px, %.1f nm/px)\n", ds_path.c_str(),
              dataset.size(), dataset.process_name.c_str(),
              dataset.render.mask_size_px, dataset.render.mask_size_px,
              dataset.samples[0].resist_pixel_nm);
  std::printf("\n%s", data::format_statistics(data::compute_statistics(dataset)).c_str());
  util::finish_observability(obs, math::simd_level());
  return 0;
}
