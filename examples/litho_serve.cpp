// Online serving demo: LithoGAN behind the dynamic micro-batching server.
//
// Spins up a serve::Server over an untrained (or tiny-trained) model and
// drives it with open-loop Poisson traffic — the arrival process a real
// screening service sees when design tools submit clips independently.
// Requests that find a full queue are rejected up front (backpressure)
// rather than queued into unbounded latency. At the end the demo prints
// the served-latency percentiles, the achieved batch-size mix — the whole
// point of micro-batching — and the rejection count.
//
//   ./litho_serve --qps 200 --duration-s 3 --batch 16 --wait-us 2000
//
// Use --trace/--metrics/--export (see util::add_obs_flags) to capture a
// Chrome trace of per-request flows and windowed metrics alongside the
// run. --slo-p99-us and --slo-reject-pct arm the SLO watchdog: breaches
// print as they happen and a budget report closes the run (see
// docs/observability.md, "Continuous export / SLO").
#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/lithogan.hpp"
#include "data/sample.hpp"
#include "image/ops.hpp"
#include "math/gemm.hpp"
#include "math/half.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/exec_context.hpp"
#include "util/logging.hpp"
#include "util/obs_cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "util/traffic.hpp"

using namespace lithogan;

namespace {

std::vector<data::Sample> synthetic_samples(std::size_t count,
                                            const core::LithoGanConfig& cfg,
                                            util::Rng& rng) {
  const std::size_t size = cfg.image_size;
  const auto s2 = static_cast<double>(size) / 2.0;
  std::vector<data::Sample> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    data::Sample s;
    s.clip_id = "serve-" + std::to_string(i);
    s.resist_pixel_nm = 128.0 / static_cast<double>(size);
    const double half = static_cast<double>(size) / 8.0 + rng.uniform(-1.0, 1.0);
    s.mask_rgb = image::Image(3, size, size);
    image::fill_rect(s.mask_rgb, 1,
                     {{s2 - half, s2 - half}, {s2 + half, s2 + half}}, 1.0f);
    samples.push_back(std::move(s));
  }
  return samples;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("Serve LithoGAN predictions under Poisson load.");
  util::add_traffic_flags(cli);
  cli.add_flag("config", "tiny", "model scale: tiny|lite")
      .add_flag("slo-p99-us", "0",
                "p99 latency budget in us for the SLO watchdog (0 = off)")
      .add_flag("slo-reject-pct", "-1",
                "rejection-rate budget in percent (negative = off)");
  util::add_obs_flags(cli);
  if (!cli.parse(argc, argv)) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  const util::ObsOptions obs_opts = util::begin_observability(cli);
  util::set_log_level(util::LogLevel::kWarn);
  const util::TrafficOptions traffic = util::read_traffic_flags(cli);

  core::LithoGanConfig cfg = cli.get("config") == "lite"
                                 ? core::LithoGanConfig::lite()
                                 : core::LithoGanConfig::tiny();
  util::ExecContext exec(traffic.threads);
  cfg.exec = &exec;
  core::LithoGan model(cfg, core::Mode::kDualLearning);

  serve::Config sc;
  sc.max_batch = traffic.batch;
  sc.max_wait_us = traffic.wait_us;
  sc.queue_capacity = traffic.queue_cap;
  serve::Server server(model, sc);
  std::printf("serving %s model (%s weights): B=%zu, T=%zu us, queue=%zu\n",
              cli.get("config").c_str(),
              math::dtype_name(model.serving_precision()), sc.max_batch,
              sc.max_wait_us, sc.queue_capacity);

  // SLO watchdog: fed by the windowed exporter (--export if given, else a
  // private callback-only exporter ticking every 200 ms). Breach
  // transitions print immediately; the final budget report prints at exit.
  obs::SloConfig slo_cfg;
  slo_cfg.p99_budget_us = cli.get_double("slo-p99-us");
  slo_cfg.rejection_budget = cli.get_double("slo-reject-pct") / 100.0;
  if (cli.get_double("slo-reject-pct") < 0.0) slo_cfg.rejection_budget = -1.0;
  const bool slo_armed = slo_cfg.p99_budget_us > 0.0 || slo_cfg.rejection_budget >= 0.0;
  std::unique_ptr<obs::SloMonitor> slo;
  std::shared_ptr<obs::Exporter> slo_exporter;  // only when --export absent
  if (slo_armed) {
    slo = std::make_unique<obs::SloMonitor>(slo_cfg);
    slo->set_breach_callback([](const obs::SloState& s) {
      std::printf("[slo] %s: p99 %.0f us, rejection %.2f%% over %llu requests\n",
                  s.breached() ? "BREACH" : "recovered", s.p99_us,
                  s.rejection_rate * 100.0,
                  static_cast<unsigned long long>(s.requests));
    });
    const auto feed = [&slo](const obs::Window& w) { slo->observe_window(w); };
    if (obs_opts.exporter) {
      obs_opts.exporter->set_window_callback(feed);
    } else {
      obs::Exporter::Options opts;
      opts.interval_ms = 200.0;
      opts.on_window = feed;
      slo_exporter = std::make_shared<obs::Exporter>(std::move(opts));
      slo_exporter->start();
    }
  }

  util::Rng rng(traffic.seed);
  const auto samples = synthetic_samples(64, cfg, rng);
  const double qps = traffic.qps;
  const double duration_s = traffic.duration_s;

  // Waiter thread claims finished tickets while the producer keeps offering
  // load — an open-loop client, so a slow server shows up as latency and
  // rejections, not as a politely reduced arrival rate.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<serve::Ticket> inflight;
  bool producing = true;
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(qps * duration_s * 2.0) + 16);
  std::vector<std::uint64_t> batch_hist(sc.max_batch + 1, 0);

  std::thread waiter([&] {
    for (;;) {
      serve::Ticket ticket;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return !inflight.empty() || !producing; });
        if (inflight.empty()) return;
        ticket = inflight.front();
        inflight.pop_front();
      }
      const serve::Response r = server.wait(ticket);
      latencies.push_back(r.latency_us);
      ++batch_hist[std::min(r.batch, batch_hist.size() - 1)];
    }
  });

  std::printf("offering %.0f qps for %.1f s...\n", qps, duration_s);
  util::Timer clock;
  const auto t0 = std::chrono::steady_clock::now();
  double next_arrival_s = 0.0;
  std::size_t clip = 0;
  while (clock.elapsed_seconds() < duration_s) {
    next_arrival_s += util::poisson_gap_s(rng, qps);
    std::this_thread::sleep_until(t0 + std::chrono::duration<double>(next_arrival_s));
    if (const auto ticket = server.try_submit(samples[clip])) {
      {
        const std::lock_guard<std::mutex> lock(mu);
        inflight.push_back(*ticket);
      }
      cv.notify_one();
    }
    clip = (clip + 1) % samples.size();
  }
  const double elapsed_s = clock.elapsed_seconds();
  {
    const std::lock_guard<std::mutex> lock(mu);
    producing = false;
  }
  cv.notify_all();
  waiter.join();
  const serve::Stats stats = server.stats();
  server.shutdown();

  const auto pct = [&](double q) { return util::percentile(latencies, q); };
  std::printf("\nserved %zu requests in %.2f s (%.0f clips/s achieved)\n",
              latencies.size(), elapsed_s,
              static_cast<double>(latencies.size()) / elapsed_s);
  std::printf("latency: p50 %.0f us, p95 %.0f us, p99 %.0f us\n", pct(0.50),
              pct(0.95), pct(0.99));
  std::printf("rejected: %llu (queue full), peak queue depth: %zu\n",
              static_cast<unsigned long long>(stats.rejected),
              stats.peak_queue_depth);
  std::printf("batch-size mix:");
  for (std::size_t b = 1; b < batch_hist.size(); ++b) {
    if (batch_hist[b] != 0) {
      std::printf(" %zu:%llu", b, static_cast<unsigned long long>(batch_hist[b]));
    }
  }
  std::printf("\n");

  if (slo) {
    if (slo_exporter) slo_exporter->stop();  // drains the final window
    // When riding --export, the shared exporter drains inside
    // finish_observability below; report on what the monitor has seen.
    const obs::SloState s = slo->state();
    std::printf("slo: %s (p99 %.0f us vs budget %.0f us, rejection %.2f%%, "
                "%llu/%llu windows in breach)\n",
                s.breached() ? "IN BREACH" : "met", s.p99_us,
                slo_cfg.p99_budget_us, s.rejection_rate * 100.0,
                static_cast<unsigned long long>(s.breach_windows),
                static_cast<unsigned long long>(s.windows_observed));
  }

  util::finish_observability(obs_opts, math::simd_level());
  return 0;
}
