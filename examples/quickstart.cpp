// Quickstart: the smallest end-to-end LithoGAN session.
//
//   1. synthesize a small contact-clip dataset with the built-in
//      lithography simulator (this is the paper's data-preparation stage);
//   2. train LithoGAN (CGAN shape model + center CNN) for a few epochs;
//   3. predict the resist pattern of a held-out clip and score it with the
//      paper's metrics (EDE, pixel accuracy, mean IoU).
//
// Runs in about a minute on one CPU core. For the real experiments use the
// bench/ harnesses; for full flag control use examples/train_model.
#include <cstdio>

#include "core/lithogan.hpp"
#include "data/dataset.hpp"
#include "eval/report.hpp"
#include "image/io.hpp"
#include "math/gemm.hpp"
#include "util/cli.hpp"
#include "util/exec_context.hpp"
#include "util/logging.hpp"
#include "util/obs_cli.hpp"

using namespace lithogan;

int main(int argc, char** argv) {
  util::CliParser cli("LithoGAN quickstart: synthesize data, train, predict.");
  cli.add_flag("clips", "48", "number of mask clips to synthesize")
      .add_flag("epochs", "10", "GAN training epochs")
      .add_flag("image-size", "32", "image resolution (power of two)")
      .add_flag("out", "quickstart_prediction", "output image prefix")
      .add_flag("threads", "0", "worker threads (0 = all cores, 1 = serial)");
  util::add_obs_flags(cli);
  if (!cli.parse(argc, argv)) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  const util::ObsOptions obs = util::begin_observability(cli);

  util::ExecContext exec(static_cast<std::size_t>(cli.get_int("threads")));

  // 1. Data: an N10-like process on a lite simulation grid.
  litho::ProcessConfig process = litho::ProcessConfig::n10();
  process.exec = &exec;
  process.grid.pixels = 128;
  process.optical.source_rings = 1;
  process.optical.source_points_per_ring = 8;

  data::BuildConfig build;
  build.clip_count = static_cast<std::size_t>(cli.get_int("clips"));
  build.render.mask_size_px = static_cast<std::size_t>(cli.get_int("image-size"));
  build.render.resist_size_px = build.render.mask_size_px;

  std::printf("synthesizing %zu clips (SRAF + OPC + rigorous simulation)...\n",
              build.clip_count);
  data::DatasetBuilder builder(process, build, util::Rng(1));
  const data::Dataset dataset = builder.build();

  util::Rng split_rng(2);
  const data::Split split = data::split_dataset(dataset, 0.75, split_rng);

  // 2. Train.
  core::LithoGanConfig config = core::LithoGanConfig::tiny();
  config.image_size = build.render.mask_size_px;
  config.base_channels = 12;
  config.max_channels = 48;
  config.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  config.center_epochs = 30;
  config.exec = &exec;

  std::printf("training LithoGAN (%zu epochs, %zu train clips)...\n", config.epochs,
              split.train.size());
  core::LithoGan model(config, core::Mode::kDualLearning);
  model.train(dataset, split.train);

  // 3. Predict + evaluate on the held-out clips.
  eval::MetricAccumulator acc("LithoGAN", dataset.process_name,
                              dataset.samples[0].resist_pixel_nm);
  for (const std::size_t i : split.test) {
    acc.add(dataset.samples[i].resist, model.predict(dataset.samples[i]));
  }
  const auto report = acc.finalize();
  std::printf("\n%s\n", eval::format_table3({report}).c_str());

  // Dump one example pair.
  const data::Sample& sample = dataset.samples[split.test.front()];
  const std::string prefix = cli.get("out");
  image::write_ppm(prefix + "_mask.ppm", sample.mask_rgb);
  image::write_pgm(prefix + "_golden.pgm", sample.resist);
  image::write_pgm(prefix + "_predicted.pgm", model.predict(sample));
  std::printf("wrote %s_{mask.ppm,golden.pgm,predicted.pgm}\n", prefix.c_str());
  util::finish_observability(obs, math::simd_level());
  return 0;
}
