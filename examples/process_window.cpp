// Domain application: focus-exposure matrix (process window) analysis.
//
// Sweeps dose and focus around nominal conditions for an isolated contact
// and a dense pair, printing the pass/fail matrix and window statistics.
// This is the kind of multi-corner simulation burden (every matrix point
// is a full simulation) that motivates learned models like LithoGAN: a
// 5x5 matrix multiplies sign-off cost 25x.
#include <cstdio>

#include "litho/process_window.hpp"
#include "math/gemm.hpp"
#include "util/cli.hpp"
#include "util/exec_context.hpp"
#include "util/logging.hpp"
#include "util/obs_cli.hpp"
#include "util/timer.hpp"

using namespace lithogan;

int main(int argc, char** argv) {
  util::CliParser cli("Focus-exposure matrix analysis for contact patterns.");
  cli.add_flag("node", "N10", "process node: N10 or N7")
      .add_flag("dose-steps", "5", "matrix dose points")
      .add_flag("focus-steps", "5", "matrix focus points")
      .add_flag("focus-range", "60", "max |focus| offset (nm)")
      .add_flag("tolerance", "0.1", "CD spec as fraction of target")
      .add_flag("threads", "0", "worker threads (0 = all cores, 1 = serial)");
  util::add_obs_flags(cli);
  if (!cli.parse(argc, argv)) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  const util::ObsOptions obs = util::begin_observability(cli);
  util::set_log_level(util::LogLevel::kWarn);

  litho::ProcessConfig process = cli.get("node") == "N7" ? litho::ProcessConfig::n7()
                                                         : litho::ProcessConfig::n10();
  process.grid.pixels = 128;
  util::ExecContext exec(static_cast<std::size_t>(cli.get_int("threads")));
  process.exec = &exec;
  {
    litho::Simulator calib(process);
    process.resist.threshold = calib.calibrate_dose();
  }

  litho::ProcessWindowConfig window;
  window.dose_steps = static_cast<std::size_t>(cli.get_int("dose-steps"));
  window.focus_steps = static_cast<std::size_t>(cli.get_int("focus-steps"));
  window.focus_max_nm = cli.get_double("focus-range");
  window.focus_min_nm = -window.focus_max_nm;
  window.cd_tolerance_fraction = cli.get_double("tolerance");

  const double c = process.grid.extent_nm / 2.0;
  const double size = process.contact_size_nm;
  struct Case {
    const char* name;
    std::vector<geometry::Rect> mask;
  };
  const Case cases[] = {
      {"isolated contact", {geometry::Rect::from_center({c, c}, size, size)}},
      {"dense pair",
       {geometry::Rect::from_center({c, c}, size, size),
        geometry::Rect::from_center({c + process.min_pitch_nm, c}, size, size)}},
      {"contact with SRAFs",
       {geometry::Rect::from_center({c, c}, size, size),
        geometry::Rect::from_center({c - 90.0, c}, 24.0, 80.0),
        geometry::Rect::from_center({c + 90.0, c}, 24.0, 80.0)}},
  };

  for (const Case& test_case : cases) {
    util::Timer timer;
    const auto result = litho::analyze_process_window(process, test_case.mask, {c, c},
                                                      size, window);
    std::printf("\n=== %s (%zu matrix points, %.1f s) ===\n", test_case.name,
                result.points.size(), timer.elapsed_seconds());
    std::printf("%s", litho::render_window(result).c_str());
    std::printf("window yield %.0f%%, exposure latitude %.1f%%\n",
                result.yield() * 100.0, result.exposure_latitude() * 100.0);
  }
  std::printf("\nNote: each matrix point is one full simulation; a learned model\n"
              "amortizes this cost, which is the paper's core runtime argument.\n");
  util::finish_observability(obs, math::simd_level());
  return 0;
}
