// Full-chip streaming demo: halo-tiled simulation over a generated chip.
//
// Generates a chip-scale contact layout, tiles it with an optics-derived
// halo and streams it through chip::ChipPipeline — the golden simulator,
// the learned model, or both (default) — printing the tiling geometry,
// contacts/second per path and how far the two paths diverge. This is the
// production shape of the per-clip model: thousands of contacts at
// sustained throughput with bounded memory.
//
//   ./litho_chip --chip-nm 4096 --threads 4
//
// --mode serve turns the chip into a stress source for the serving layer:
// every owned contact's clip is rendered once, then submitted to
// serve::Server under open-loop Poisson arrivals (--qps/--duration-s), the
// same client model as litho_serve.
//
// Use --trace/--metrics/--export (see util::add_obs_flags) to capture the
// chip.tile/chip.sim/chip.infer/chip.stitch spans and the chip.* counters
// alongside the run; --fast drops to a reduced source for quick smokes.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "chip/layout.hpp"
#include "chip/pipeline.hpp"
#include "core/config.hpp"
#include "core/lithogan.hpp"
#include "data/render.hpp"
#include "data/sample.hpp"
#include "litho/simulator.hpp"
#include "math/gemm.hpp"
#include "math/half.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/exec_context.hpp"
#include "util/logging.hpp"
#include "util/obs_cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "util/traffic.hpp"

using namespace lithogan;

namespace {

/// Renders the clip-local mask for one owned contact — the same clip frame
/// the pipeline's learned path builds, used here to feed the server.
data::Sample render_contact_sample(const chip::ChipLayout& layout, std::uint32_t i,
                                   const litho::ProcessConfig& process,
                                   const data::RenderConfig& rc) {
  const geometry::Point center = layout.contacts()[i].drawn.center();
  const double extent = process.grid.extent_nm;
  const geometry::Point off{extent / 2.0 - center.x, extent / 2.0 - center.y};
  layout::MaskClip clip;
  clip.extent_nm = extent;
  clip.target = layout.contacts()[i].drawn.translated(off);
  clip.target_opc = layout.contacts()[i].opc.translated(off);
  std::vector<std::uint32_t> near;
  layout.query({{center.x - extent / 2.0, center.y - extent / 2.0},
                {center.x + extent / 2.0, center.y + extent / 2.0}},
               near);
  for (const std::uint32_t j : near) {
    if (j == i) continue;
    clip.neighbors.push_back(layout.contacts()[j].drawn.translated(off));
    clip.neighbors_opc.push_back(layout.contacts()[j].opc.translated(off));
  }
  data::Sample s;
  s.clip_id = "chip-" + std::to_string(i);
  s.resist_pixel_nm = rc.crop_window_nm / static_cast<double>(rc.resist_size_px);
  s.mask_rgb = data::render_mask(clip, rc);
  return s;
}

struct PathReport {
  std::size_t contacts = 0;
  std::size_t printed = 0;
  double seconds = 0.0;
};

PathReport report_from(chip::ChipPipeline& pipe, bool learned,
                       core::LithoGan* model) {
  PathReport out;
  util::Timer timer;
  const auto sink = [&](std::size_t, std::span<const chip::ContactResult> r) {
    out.contacts += r.size();
    for (const chip::ContactResult& x : r) out.printed += x.printed ? 1 : 0;
  };
  if (learned) {
    pipe.run_learned(*model, sink);
  } else {
    pipe.run_golden(sink);
  }
  out.seconds = timer.elapsed_seconds();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("Stream a generated chip through the halo-tiled pipeline.");
  util::TrafficOptions traffic_defaults;
  traffic_defaults.seed = 7;
  util::add_traffic_flags(cli, traffic_defaults);
  cli.add_flag("chip-nm", "4096", "chip window edge length in nm")
      .add_flag("tile-nm", "2048", "tile grid edge in nm (core + 2x halo)")
      .add_flag("tile-px", "512", "tile grid resolution")
      .add_flag("halo-lobes", "4", "halo width in optical-ambit lobes")
      .add_flag("ring", "4", "in-flight tile ring depth")
      .add_flag("config", "tiny", "model scale: tiny|lite")
      .add_flag("mode", "both", "golden|learned|both|serve")
      .add_flag("fast", "false", "reduced source sampling for quick smokes");
  util::add_obs_flags(cli);
  if (!cli.parse(argc, argv)) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  const util::ObsOptions obs_opts = util::begin_observability(cli);
  util::set_log_level(util::LogLevel::kWarn);
  const util::TrafficOptions traffic = util::read_traffic_flags(cli);
  const std::string mode = cli.get("mode");

  litho::ProcessConfig process = litho::ProcessConfig::n10();
  if (cli.get_bool("fast")) {
    process.optical.source_rings = 1;
    process.optical.source_points_per_ring = 8;
  }
  litho::Simulator calib(process);
  calib.calibrate_dose();
  const litho::ProcessConfig calibrated = calib.process();

  chip::ChipConfig chip_cfg;
  chip_cfg.chip_nm = std::max(512.0, cli.get_double("chip-nm"));
  chip_cfg.tile_extent_nm = cli.get_double("tile-nm");
  chip_cfg.tile_pixels = static_cast<std::size_t>(cli.get_int("tile-px"));
  chip_cfg.halo_lobes = cli.get_double("halo-lobes");
  chip_cfg.ring_depth = static_cast<std::size_t>(cli.get_int("ring"));
  chip_cfg.infer_batch = traffic.batch;
  chip_cfg.seed = traffic.seed;

  const chip::ChipLayout layout(calibrated, chip_cfg);
  util::ExecContext exec(traffic.threads);
  chip::ChipPipeline pipe(calibrated, layout, &exec);
  std::printf("chip %.0f nm: %zu contacts, %zux%zu tiles of %.0f nm "
              "(halo %.0f nm, core %.0f nm), ring %zu slots\n",
              chip_cfg.chip_nm, layout.contacts().size(), pipe.tiles_x(),
              pipe.tiles_y(), chip_cfg.tile_extent_nm, pipe.halo_nm(),
              pipe.core_nm(), pipe.stats().ring_slots);

  core::LithoGanConfig model_cfg = cli.get("config") == "lite"
                                       ? core::LithoGanConfig::lite()
                                       : core::LithoGanConfig::tiny();
  core::LithoGan model(model_cfg, core::Mode::kDualLearning);

  if (mode == "serve") {
    // Chip as serving stress source: render every owned clip once, then
    // offer them at Poisson arrivals — litho_serve's client loop with the
    // chip supplying realistic neighborhoods instead of synthetic squares.
    data::RenderConfig rc;
    rc.mask_size_px = model_cfg.image_size;
    rc.resist_size_px = model_cfg.image_size;
    rc.crop_window_nm = calibrated.crop_window_nm;
    const std::size_t pool = std::min<std::size_t>(layout.contacts().size(), 128);
    std::vector<data::Sample> samples;
    samples.reserve(pool);
    for (std::uint32_t i = 0; i < pool; ++i) {
      samples.push_back(render_contact_sample(layout, i, calibrated, rc));
    }
    serve::Config sc;
    sc.max_batch = traffic.batch;
    sc.max_wait_us = traffic.wait_us;
    sc.queue_capacity = traffic.queue_cap;
    serve::Server server(model, sc);
    std::printf("serving %zu chip clips at %.0f qps for %.1f s (B=%zu)...\n",
                samples.size(), traffic.qps, traffic.duration_s, sc.max_batch);

    util::Rng rng(traffic.seed);
    std::vector<double> latencies;
    std::vector<serve::Ticket> tickets;
    util::Timer clock;
    const auto t0 = std::chrono::steady_clock::now();
    double next_arrival_s = 0.0;
    std::size_t clip = 0;
    while (clock.elapsed_seconds() < traffic.duration_s) {
      next_arrival_s += util::poisson_gap_s(rng, traffic.qps);
      std::this_thread::sleep_until(t0 +
                                    std::chrono::duration<double>(next_arrival_s));
      if (const auto ticket = server.try_submit(samples[clip])) {
        tickets.push_back(*ticket);
      }
      clip = (clip + 1) % samples.size();
    }
    for (const auto& t : tickets) {
      latencies.push_back(server.wait(t).latency_us);
    }
    const double elapsed_s = clock.elapsed_seconds();
    const serve::Stats stats = server.stats();
    server.shutdown();
    std::printf("served %zu clips in %.2f s (%.0f clips/s), p50 %.0f us, "
                "p99 %.0f us, rejected %llu\n",
                latencies.size(), elapsed_s,
                static_cast<double>(latencies.size()) / elapsed_s,
                util::percentile(latencies, 0.50),
                util::percentile(latencies, 0.99),
                static_cast<unsigned long long>(stats.rejected));
    util::finish_observability(obs_opts, math::simd_level());
    return 0;
  }

  if (mode == "golden" || mode == "both") {
    const PathReport golden = report_from(pipe, false, nullptr);
    std::printf("golden:  %7.0f contacts/s (%zu contacts, %zu printed, %.2f s, "
                "%zu threads)\n",
                static_cast<double>(golden.contacts) / std::max(golden.seconds, 1e-9),
                golden.contacts, golden.printed, golden.seconds, exec.threads());
  }
  if (mode == "learned" || mode == "both") {
    const PathReport learned = report_from(pipe, true, &model);
    std::printf("learned: %7.0f contacts/s (%zu contacts, %zu printed, %.2f s, "
                "%s weights)\n",
                static_cast<double>(learned.contacts) /
                    std::max(learned.seconds, 1e-9),
                learned.contacts, learned.printed, learned.seconds,
                math::dtype_name(model.serving_precision()));
  }
  std::printf("ring residency: %zu slots, %.1f KiB peak buffer capacity\n",
              pipe.stats().ring_slots,
              static_cast<double>(pipe.stats().ring_bytes) / 1024.0);

  util::finish_observability(obs_opts, math::simd_level());
  return 0;
}
