// Domain application: lithography hotspot screening with LithoGAN.
//
// The paper's motivation is design-closure speed: a fab flags a contact as
// a hotspot when its printed CD deviates too far from target, and finding
// those with rigorous simulation takes hours. This example trains a
// LithoGAN once, then screens a fresh batch of clips by *predicted* CD,
// comparing verdicts and wall-time against the golden simulator — i.e. the
// "new lithography modeling paradigm" of the paper's conclusion in action.
#include <cstdio>

#include "core/lithogan.hpp"
#include "core/screening.hpp"
#include "data/dataset.hpp"
#include "math/gemm.hpp"
#include "util/cli.hpp"
#include "util/exec_context.hpp"
#include "util/logging.hpp"
#include "util/obs_cli.hpp"
#include "util/timer.hpp"

using namespace lithogan;

int main(int argc, char** argv) {
  util::CliParser cli("Screen contact clips for CD hotspots with LithoGAN.");
  cli.add_flag("train-clips", "90", "clips for model training")
      .add_flag("screen-clips", "40", "fresh clips to screen")
      .add_flag("epochs", "25", "GAN training epochs")
      .add_flag("budget-frac", "0.12", "CD error budget as fraction of target")
      .add_flag("threads", "0", "worker threads (0 = all cores, 1 = serial)");
  util::add_obs_flags(cli);
  if (!cli.parse(argc, argv)) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  const util::ObsOptions obs = util::begin_observability(cli);
  util::set_log_level(util::LogLevel::kWarn);

  util::ExecContext exec(static_cast<std::size_t>(cli.get_int("threads")));
  litho::ProcessConfig process = litho::ProcessConfig::n10();
  process.grid.pixels = 128;
  process.optical.source_rings = 1;
  process.optical.source_points_per_ring = 8;
  process.exec = &exec;

  // --- Train once on synthesized data. ---------------------------------
  data::BuildConfig build;
  build.clip_count = static_cast<std::size_t>(cli.get_int("train-clips"));
  build.render.mask_size_px = 32;
  build.render.resist_size_px = 32;
  std::printf("preparing %zu training clips...\n", build.clip_count);
  data::DatasetBuilder builder(process, build, util::Rng(11));
  const data::Dataset dataset = builder.build();

  core::LithoGanConfig config = core::LithoGanConfig::tiny();
  config.image_size = 32;
  config.base_channels = 12;
  config.max_channels = 48;
  config.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  config.center_epochs = 40;
  config.exec = &exec;

  std::vector<std::size_t> all(dataset.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  std::printf("training LithoGAN (%zu epochs)...\n", config.epochs);
  core::LithoGan model(config, core::Mode::kDualLearning);
  model.train(dataset, all);

  // --- Screen a fresh batch: widen the pitch range so some clips are ----
  // --- genuinely marginal and print out of spec. ------------------------
  const double target = process.contact_size_nm;
  const double budget = cli.get_double("budget-frac") * target;

  data::BuildConfig screen_build = build;
  screen_build.clip_count = static_cast<std::size_t>(cli.get_int("screen-clips"));
  screen_build.cd_band_lo = 0.3;  // keep marginal clips instead of redrawing
  screen_build.cd_band_hi = 2.0;
  screen_build.generator.pitch_min_factor = 1.0;
  screen_build.generator.position_jitter_nm = 10.0;
  screen_build.opc.iterations = 2;  // sloppier OPC -> a mix of marginal clips
  data::DatasetBuilder screen_builder(process, screen_build, util::Rng(97));
  std::printf("screening %zu fresh clips (budget: |CD-%.0f| > %.1f nm)...\n",
              screen_build.clip_count, target, budget);

  util::Timer golden_timer;
  const data::Dataset screen_set = screen_builder.build();
  const double golden_s = golden_timer.elapsed_seconds();

  const core::ScreeningSpec spec{target, budget};
  util::Timer gan_timer;
  const core::ScreeningReport report =
      core::screen_dataset(model, screen_set.samples, spec);
  const double gan_s = gan_timer.elapsed_seconds();

  std::printf("\nverdicts vs golden simulation (%zu clips):\n", report.total());
  std::printf("  true hotspots caught:   %zu\n", report.true_hotspots);
  std::printf("  clean correctly passed: %zu\n", report.true_clean);
  std::printf("  false alarms:           %zu\n", report.false_alarms);
  std::printf("  missed hotspots:        %zu\n", report.missed);
  std::printf("  screening accuracy:     %.0f%% (hotspot recall %.0f%%)\n",
              report.accuracy() * 100.0, report.recall() * 100.0);
  std::printf("\nwall time: golden flow %.1f s (includes RET+simulation), LithoGAN "
              "inference %.2f s -> %.0fx faster screening\n",
              golden_s, gan_s, golden_s / std::max(gan_s, 1e-9));
  util::finish_observability(obs, math::simd_level());
  return 0;
}
