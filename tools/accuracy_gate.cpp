// Reduced-precision accuracy gate.
//
// Compiles the generator into an fp32 InferencePlan plus one plan per
// reduced precision (f16, bf16, i8), runs the same input batch through all
// of them and gates the deltas with eval::compare_outputs against the
// per-dtype tolerances (eval::gate_tolerance; override via
// LITHOGAN_ACC_MIN_IOU / LITHOGAN_ACC_MAX_CENTER / LITHOGAN_ACC_MAX_ABS).
//
// A second, inverted check runs automatically: every reduced precision must
// *fail* the zero tolerance {min_iou=1, max_center=0, max_abs=0}. A gate
// that cannot distinguish rounded output from exact output gates nothing,
// so a bit-exact "reduced" plan (weights silently kept at fp32) is reported
// as a failure here, not a success.
//
// Usage: accuracy_gate [--config tiny|lite|paper] [--batch N] [--dump]
// Exit status 0 iff every tolerance check and the inverted check pass.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/lithogan.hpp"
#include "eval/precision_gate.hpp"
#include "math/half.hpp"
#include "nn/infer.hpp"
#include "nn/sequential.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

using namespace lithogan;

namespace {

nn::Tensor random_masks(std::size_t batch, const core::LithoGanConfig& cfg,
                        util::Rng& rng) {
  nn::Tensor t({batch, cfg.mask_channels, cfg.image_size, cfg.image_size});
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::kWarn);

  core::LithoGanConfig cfg = core::LithoGanConfig::lite();
  std::size_t batch = 4;
  bool dump = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--config" && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name == "tiny") cfg = core::LithoGanConfig::tiny();
      else if (name == "lite") cfg = core::LithoGanConfig::lite();
      else if (name == "paper") cfg = core::LithoGanConfig::paper();
      else {
        std::fprintf(stderr, "unknown --config %s\n", name.c_str());
        return 2;
      }
    } else if (arg == "--batch" && i + 1 < argc) {
      batch = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--dump") {
      dump = true;
    } else {
      std::fprintf(stderr,
                   "usage: accuracy_gate [--config tiny|lite|paper] [--batch N] "
                   "[--dump]\n");
      return 2;
    }
  }

  core::LithoGan model(cfg, core::Mode::kDualLearning);
  auto& gen = static_cast<nn::Sequential&>(model.cgan().generator());
  gen.set_training(false);
  util::Rng rng(20260808);
  const nn::Tensor masks = random_masks(batch, cfg, rng);
  const std::vector<std::size_t> sample_shape{cfg.mask_channels, cfg.image_size,
                                              cfg.image_size};

  nn::InferencePlan ref_plan;
  ref_plan.set_precision(math::Dtype::kF32);
  ref_plan.compile(gen, sample_shape);
  const nn::Tensor ref = ref_plan.infer(masks);  // copy: plan storage is reused

  std::printf("accuracy gate — generator %zux%zu, batch %zu, fp32 reference\n\n",
              cfg.image_size, cfg.image_size, batch);
  std::printf("  %-6s %10s %12s %10s %8s %8s\n", "dtype", "mean_iou", "max_center",
              "max_abs", "weights", "gate");

  const eval::GateTolerance zero{1.0, 0.0, 0.0};
  bool ok = true;
  for (const math::Dtype dtype :
       {math::Dtype::kF16, math::Dtype::kBF16, math::Dtype::kI8}) {
    nn::InferencePlan plan;
    plan.set_precision(dtype);
    plan.compile(gen, sample_shape);
    const nn::Tensor& out = plan.infer(masks);
    const eval::GateResult r = eval::compare_outputs(ref, out);
    const eval::GateTolerance tol = eval::gate_tolerance(dtype);
    const bool pass = r.pass(tol);
    // Inverted check: rounding must be *visible* — a reduced plan whose
    // output is bit-exact would mean the precision knob did nothing.
    const bool discriminates = !r.pass(zero);
    ok = ok && pass && discriminates;
    std::printf("  %-6s %10.4f %12.3f %10.2e %7zuK %8s\n", math::dtype_name(dtype),
                r.mean_iou, r.max_center, r.max_abs, plan.weight_bytes() / 1024,
                !pass              ? "FAIL"
                : !discriminates   ? "FAIL(exact)"
                                   : "OK");
    if (!pass) {
      std::printf("         tolerance: min_iou=%.4f max_center=%.3f max_abs=%.2e\n",
                  tol.min_iou, tol.max_center, tol.max_abs);
    }
    if (dump) std::printf("\n%s\n", plan.plan_dump().c_str());
  }

  std::printf("\nfp32 plan weights: %zuK; zero-tolerance check: reduced plans "
              "must (and do%s) fail {iou=1, center=0, abs=0}\n",
              ref_plan.weight_bytes() / 1024, ok ? "" : " NOT");
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
