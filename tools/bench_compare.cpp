// Regression diff for two BENCH_*.json files (bench/bench_json.hpp
// schema). Rows are matched by their (op, shape, threads, dtype) key; a
// matched row regresses when the candidate's ns_per_iter exceeds the
// baseline's by more than --max-regress-pct percent. Unmatched rows on
// either side are reported but never fail the comparison — benches grow
// and retire shapes, and a key that disappeared is a coverage change, not
// a slowdown. Host blocks are printed when they differ so a cross-machine
// diff is recognizable as such.
//
//   bench_compare --base BENCH_serve.json --candidate BENCH_serve.new.json \
//                 --max-regress-pct 10
//
// Exit codes: 0 = no regression, 1 = at least one matched row regressed,
// 2 = usage/parse error. --selftest runs the comparison logic against
// in-memory documents and needs no files.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_verify.hpp"
#include "util/cli.hpp"

using lithogan::obs::json::Value;

namespace {

struct Row {
  double value = 0.0;        ///< ns_per_iter slot (a rate when dir is "higher")
  bool higher_is_better = false;  ///< record's "dir" field ("higher"/"lower")
};

struct BenchDoc {
  std::string host;  ///< "cpus=N simd=..." summary for mismatch reporting
  std::map<std::string, Row> rows;  ///< keyed by op|shape|threads|dtype
};

BenchDoc parse_bench(const Value& root, const std::string& label) {
  if (root.kind != Value::Kind::kObject) {
    throw std::runtime_error(label + ": top level is not an object");
  }
  BenchDoc doc;
  if (const Value* host = root.get("host"); host != nullptr && host->is_object()) {
    std::ostringstream os;
    if (const Value* cpus = host->get("cpus")) os << "cpus=" << cpus->number;
    if (const Value* simd = host->get("simd")) os << " simd=" << simd->string;
    doc.host = os.str();
  }
  const Value* records = root.get("records");
  if (records == nullptr || !records->is_array()) {
    throw std::runtime_error(label + ": missing records array");
  }
  for (const auto& entry : records->array) {
    if (!entry->is_object()) continue;
    const Value* op = entry->get("op");
    const Value* shape = entry->get("shape");
    const Value* threads = entry->get("threads");
    const Value* ns = entry->get("ns_per_iter");
    if (op == nullptr || shape == nullptr || threads == nullptr || ns == nullptr) {
      continue;
    }
    std::string dtype = "f32";
    if (const Value* d = entry->get("dtype"); d != nullptr && !d->string.empty()) {
      dtype = d->string;
    }
    const std::string key = op->string + '|' + shape->string + '|' +
                            std::to_string(static_cast<long long>(threads->number)) +
                            '|' + dtype;
    Row row;
    row.value = ns->number;
    if (const Value* dir = entry->get("dir")) {
      row.higher_is_better = dir->string == "higher";
    }
    doc.rows[key] = row;
  }
  return doc;
}

struct CompareResult {
  std::size_t matched = 0;
  std::size_t base_only = 0;
  std::size_t candidate_only = 0;
  std::vector<std::string> regressions;  ///< human-readable, one per bad row
};

/// Core comparison: a matched row regresses when the candidate moves the
/// WRONG way by more than the budget — candidate > base * (1 + pct/100) on
/// a "lower" (ns/iter) row, candidate < base / (1 + pct/100) on a "higher"
/// (rate) row. The baseline row's direction governs the flip. Rows with a
/// non-positive baseline are skipped — a 0 row is a placeholder, and a
/// ratio against it is meaningless.
CompareResult compare(const BenchDoc& base, const BenchDoc& candidate,
                      double max_regress_pct) {
  CompareResult result;
  const double limit = 1.0 + max_regress_pct / 100.0;
  for (const auto& [key, base_row] : base.rows) {
    const auto it = candidate.rows.find(key);
    if (it == candidate.rows.end()) {
      ++result.base_only;
      continue;
    }
    ++result.matched;
    if (base_row.value <= 0.0) continue;
    const double ratio = it->second.value / base_row.value;
    const bool regressed =
        base_row.higher_is_better ? ratio < 1.0 / limit : ratio > limit;
    if (regressed) {
      char buf[256];
      std::snprintf(buf, sizeof(buf), "%s: %.0f -> %.0f %s (%+.1f%%, budget %.1f%%)",
                    key.c_str(), base_row.value, it->second.value,
                    base_row.higher_is_better ? "(higher is better)" : "ns/iter",
                    (ratio - 1.0) * 100.0, max_regress_pct);
      result.regressions.push_back(buf);
    }
  }
  for (const auto& [key, ns] : candidate.rows) {
    if (base.rows.find(key) == base.rows.end()) ++result.candidate_only;
  }
  return result;
}

Value parse_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return lithogan::obs::json::parse(ss.str());
}

int selftest() {
  const auto doc = [](const char* text) {
    return parse_bench(lithogan::obs::json::parse(text), "selftest");
  };
  const BenchDoc base = doc(
      "{\"host\": {\"cpus\": 1, \"simd\": \"scalar\"}, \"records\": ["
      "{\"op\": \"gemm\", \"shape\": \"256\", \"threads\": 1, \"dtype\": \"f32\","
      " \"ns_per_iter\": 1000.0},"
      "{\"op\": \"gemm\", \"shape\": \"512\", \"threads\": 1, \"dtype\": \"f32\","
      " \"ns_per_iter\": 8000.0},"
      "{\"op\": \"conv\", \"shape\": \"64\", \"threads\": 2, \"dtype\": \"f16\","
      " \"ns_per_iter\": 500.0},"
      "{\"op\": \"chip_rate\", \"shape\": \"4096\", \"threads\": 1, \"dtype\": \"f32\","
      " \"dir\": \"higher\", \"ns_per_iter\": 1000.0},"
      "{\"op\": \"retired\", \"shape\": \"1\", \"threads\": 1,"
      " \"ns_per_iter\": 10.0}]}");
  const BenchDoc cand = doc(
      "{\"host\": {\"cpus\": 1, \"simd\": \"scalar\"}, \"records\": ["
      "{\"op\": \"gemm\", \"shape\": \"256\", \"threads\": 1, \"dtype\": \"f32\","
      " \"ns_per_iter\": 1040.0},"  // +4%: within a 5% budget, over a 2% one
      "{\"op\": \"gemm\", \"shape\": \"512\", \"threads\": 1, \"dtype\": \"f32\","
      " \"ns_per_iter\": 7000.0},"  // improvement: never a regression
      "{\"op\": \"conv\", \"shape\": \"64\", \"threads\": 2, \"dtype\": \"f16\","
      " \"ns_per_iter\": 800.0},"   // +60%: regression under any sane budget
      "{\"op\": \"chip_rate\", \"shape\": \"4096\", \"threads\": 1, \"dtype\": \"f32\","
      " \"dir\": \"higher\", \"ns_per_iter\": 960.0},"  // -4% rate: only a 2% budget trips
      "{\"op\": \"new\", \"shape\": \"9\", \"threads\": 1,"
      " \"ns_per_iter\": 3.0}]}");

  const auto check = [](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "bench_compare selftest FAIL: %s\n", what);
      std::exit(1);
    }
  };
  CompareResult loose = compare(base, cand, 100.0);
  check(loose.matched == 4, "matched count");
  check(loose.base_only == 1 && loose.candidate_only == 1, "unmatched counts");
  check(loose.regressions.empty(), "no regressions at +100%");
  CompareResult tight = compare(base, cand, 5.0);
  check(tight.regressions.size() == 1, "one regression at 5% (conv only)");
  check(tight.regressions[0].find("conv|64|2|f16") != std::string::npos,
        "regression names the conv row");
  CompareResult strict = compare(base, cand, 2.0);
  check(strict.regressions.size() == 3, "three regressions at 2%");
  bool chip_flagged = false;
  for (const std::string& r : strict.regressions) {
    chip_flagged = chip_flagged || r.find("chip_rate|4096|1|f32") != std::string::npos;
  }
  check(chip_flagged, "a dropped dir:higher rate counts as a regression");
  check(compare(base, base, 0.0).regressions.empty(), "self-compare is clean");
  std::printf("bench_compare selftest OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  lithogan::util::CliParser cli(
      "Diff two BENCH_*.json files and fail on throughput regressions.");
  cli.add_flag("base", "", "baseline bench JSON")
      .add_flag("candidate", "", "candidate bench JSON to judge against the baseline")
      .add_flag("max-regress-pct", "10",
                "allowed ns_per_iter growth per matched (op,shape,threads,dtype) "
                "row, in percent")
      .add_flag("selftest", "0", "run the in-memory comparison selftest and exit");
  if (!cli.parse(argc, argv)) {
    std::printf("%s", cli.usage().c_str());
    return 2;
  }
  if (cli.get_int("selftest") != 0) return selftest();
  const std::string base_path = cli.get("base");
  const std::string cand_path = cli.get("candidate");
  if (base_path.empty() || cand_path.empty()) {
    std::fprintf(stderr, "bench_compare: both --base and --candidate are required\n");
    return 2;
  }
  try {
    const BenchDoc base = parse_bench(parse_file(base_path), base_path);
    const BenchDoc cand = parse_bench(parse_file(cand_path), cand_path);
    if (!base.host.empty() && base.host != cand.host) {
      std::printf("note: host mismatch (base %s, candidate %s) — deltas may be "
                  "machine, not code\n",
                  base.host.c_str(), cand.host.c_str());
    }
    const CompareResult result =
        compare(base, cand, cli.get_double("max-regress-pct"));
    std::printf("bench_compare: %zu matched rows (%zu base-only, %zu "
                "candidate-only)\n",
                result.matched, result.base_only, result.candidate_only);
    if (result.matched == 0) {
      std::fprintf(stderr, "bench_compare: no comparable rows between %s and %s\n",
                   base_path.c_str(), cand_path.c_str());
      return 2;
    }
    for (const std::string& r : result.regressions) {
      std::printf("REGRESSION %s\n", r.c_str());
    }
    if (!result.regressions.empty()) {
      std::fprintf(stderr, "bench_compare: %zu regression(s)\n",
                   result.regressions.size());
      return 1;
    }
    std::printf("bench_compare: OK\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: FAIL: %s\n", e.what());
    return 2;
  }
  return 0;
}
