// Schema validator for the observability outputs, used by the obs-smoke
// ctest entries: parses a Chrome trace-event JSON file and/or a metrics
// JSONL file with the in-tree parser (src/obs/json_verify.hpp) and checks
// the invariants the exporters promise:
//
//   trace:   top-level {"traceEvents": [...]}; every event has a string
//            "ph"; "X" events carry name/pid/tid/ts/dur with ts/dur >= 0;
//            at least one "M" thread_name metadata record exists, so
//            Perfetto shows named tracks.
//   metrics: every line is one object with a "host" block ({cpus, simd})
//            and "counters"/"gauges"/"histograms" objects; histogram
//            bucket-count arrays are one longer than their bounds
//            (overflow bucket).
//
//   bench-serve: a bench JSON written by serve_bench — one "host" block,
//            a non-empty "records" array, and a "serve" block whose
//            "points" each carry monotone p50 <= p95 <= p99 latencies and
//            whose "gates" verdicts are present.
//
//   obs_validate --trace out.json --metrics out.jsonl --bench-serve BENCH_serve.json
//
// Exits nonzero with a message on the first violation.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json_verify.hpp"
#include "util/cli.hpp"

using lithogan::obs::json::Value;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

void require(bool ok, const std::string& what) {
  if (!ok) throw std::runtime_error(what);
}

const Value& field(const Value& obj, const char* key, const std::string& where) {
  const Value* v = obj.get(key);
  require(v != nullptr, where + ": missing \"" + key + "\"");
  return *v;
}

void validate_trace(const std::string& path) {
  const Value root = lithogan::obs::json::parse(read_file(path));
  require(root.kind == Value::Kind::kObject, "trace: top level is not an object");
  const Value& events = field(root, "traceEvents", "trace");
  require(events.kind == Value::Kind::kArray, "trace: traceEvents is not an array");

  std::size_t complete = 0;
  std::size_t thread_names = 0;
  for (std::size_t i = 0; i < events.array.size(); ++i) {
    const Value& e = *events.array[i];
    const std::string where = "trace event " + std::to_string(i);
    require(e.kind == Value::Kind::kObject, where + ": not an object");
    const Value& ph = field(e, "ph", where);
    require(ph.kind == Value::Kind::kString, where + ": ph is not a string");
    if (ph.string == "X") {
      ++complete;
      require(field(e, "name", where).kind == Value::Kind::kString,
              where + ": name is not a string");
      for (const char* k : {"pid", "tid", "ts", "dur"}) {
        const Value& n = field(e, k, where);
        require(n.kind == Value::Kind::kNumber,
                where + ": " + k + " is not a number");
        require(n.number >= 0.0, where + ": " + k + " is negative");
      }
    } else if (ph.string == "M") {
      const Value& name = field(e, "name", where);
      require(name.kind == Value::Kind::kString, where + ": name is not a string");
      if (name.string == "thread_name") ++thread_names;
    } else {
      throw std::runtime_error(where + ": unexpected ph \"" + ph.string + "\"");
    }
  }
  require(thread_names >= 1, "trace: no thread_name metadata record");
  std::printf("trace OK: %s (%zu complete events, %zu named tracks)\n", path.c_str(),
              complete, thread_names);
}

void validate_metrics(const std::string& path) {
  std::ifstream is(path);
  require(static_cast<bool>(is), "cannot open " + path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ++lines;
    const std::string where = "metrics line " + std::to_string(lines);
    const Value root = lithogan::obs::json::parse(line);
    require(root.kind == Value::Kind::kObject, where + ": not an object");

    const Value& host = field(root, "host", where);
    require(host.kind == Value::Kind::kObject, where + ": host is not an object");
    require(field(host, "cpus", where).kind == Value::Kind::kNumber,
            where + ": host.cpus is not a number");
    require(field(host, "simd", where).kind == Value::Kind::kString,
            where + ": host.simd is not a string");

    for (const char* section : {"counters", "gauges", "histograms"}) {
      require(field(root, section, where).kind == Value::Kind::kObject,
              where + ": " + section + " is not an object");
    }
    const Value& histograms = *root.get("histograms");
    for (const auto& [name, hp] : histograms.object) {
      const Value& h = *hp;
      const std::string hw = where + " histogram " + name;
      require(h.kind == Value::Kind::kObject, hw + ": not an object");
      const Value& bounds = field(h, "bounds", hw);
      const Value& counts = field(h, "counts", hw);
      require(bounds.kind == Value::Kind::kArray && counts.kind == Value::Kind::kArray,
              hw + ": bounds/counts are not arrays");
      require(counts.array.size() == bounds.array.size() + 1,
              hw + ": counts must be bounds + overflow bucket");
    }
  }
  require(lines >= 1, "metrics: file has no snapshot lines");
  std::printf("metrics OK: %s (%zu snapshot lines)\n", path.c_str(), lines);
}

void validate_bench_serve(const std::string& path) {
  const Value root = lithogan::obs::json::parse(read_file(path));
  require(root.kind == Value::Kind::kObject, "bench-serve: top level is not an object");

  const Value& host = field(root, "host", "bench-serve");
  require(host.kind == Value::Kind::kObject, "bench-serve: host is not an object");
  require(field(host, "cpus", "bench-serve host").kind == Value::Kind::kNumber,
          "bench-serve: host.cpus is not a number");
  const Value& records = field(root, "records", "bench-serve");
  require(records.kind == Value::Kind::kArray && !records.array.empty(),
          "bench-serve: records is not a non-empty array");

  const Value& serve = field(root, "serve", "bench-serve");
  require(serve.kind == Value::Kind::kObject, "bench-serve: serve is not an object");
  for (const char* k : {"batch", "wait_us", "queue_capacity", "serial_qps"}) {
    require(field(serve, k, "bench-serve serve").kind == Value::Kind::kNumber,
            std::string("bench-serve: serve.") + k + " is not a number");
  }
  const Value& points = field(serve, "points", "bench-serve serve");
  require(points.kind == Value::Kind::kArray && !points.array.empty(),
          "bench-serve: serve.points is not a non-empty array");
  for (std::size_t i = 0; i < points.array.size(); ++i) {
    const Value& p = *points.array[i];
    const std::string where = "bench-serve point " + std::to_string(i);
    require(p.kind == Value::Kind::kObject, where + ": not an object");
    for (const char* k : {"qps_offered", "qps_achieved", "p50_us", "p95_us",
                          "p99_us", "completed", "rejected"}) {
      const Value& n = field(p, k, where);
      require(n.kind == Value::Kind::kNumber && n.number >= 0.0,
              where + ": " + k + " is not a non-negative number");
    }
    const double p50 = p.get("p50_us")->number;
    const double p95 = p.get("p95_us")->number;
    const double p99 = p.get("p99_us")->number;
    require(p50 <= p95 && p95 <= p99, where + ": percentiles not monotone");
  }
  const Value& hist = field(serve, "batch_hist", "bench-serve serve");
  require(hist.kind == Value::Kind::kArray && !hist.array.empty(),
          "bench-serve: serve.batch_hist is not a non-empty array");
  const Value& gates = field(serve, "gates", "bench-serve serve");
  require(gates.kind == Value::Kind::kObject, "bench-serve: gates is not an object");
  require(field(gates, "throughput_vs_serial", "bench-serve gates").kind ==
              Value::Kind::kBool,
          "bench-serve: gates.throughput_vs_serial is not a bool");
  require(field(gates, "dispatch_allocs", "bench-serve gates").kind ==
              Value::Kind::kNumber,
          "bench-serve: gates.dispatch_allocs is not a number");
  require(field(gates, "pass", "bench-serve gates").kind == Value::Kind::kBool,
          "bench-serve: gates.pass is not a bool");
  std::printf("bench-serve OK: %s (%zu load points)\n", path.c_str(),
              points.array.size());
}

}  // namespace

int main(int argc, char** argv) {
  lithogan::util::CliParser cli("Validate observability outputs (trace JSON, metrics JSONL).");
  cli.add_flag("trace", "", "Chrome trace-event JSON file to validate")
      .add_flag("metrics", "", "metrics JSONL file to validate")
      .add_flag("bench-serve", "", "serve_bench JSON file to validate");
  if (!cli.parse(argc, argv)) {
    std::printf("%s", cli.usage().c_str());
    return 2;
  }
  try {
    const std::string trace = cli.get("trace");
    const std::string metrics = cli.get("metrics");
    const std::string bench_serve = cli.get("bench-serve");
    if (trace.empty() && metrics.empty() && bench_serve.empty()) {
      std::fprintf(stderr,
                   "obs_validate: nothing to do (pass --trace, --metrics and/or "
                   "--bench-serve)\n");
      return 2;
    }
    if (!trace.empty()) validate_trace(trace);
    if (!metrics.empty()) validate_metrics(metrics);
    if (!bench_serve.empty()) validate_bench_serve(bench_serve);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "obs_validate: FAIL: %s\n", e.what());
    return 1;
  }
  return 0;
}
