// Schema validator for the observability outputs, used by the obs-smoke
// ctest entries: parses a Chrome trace-event JSON file and/or a metrics
// JSONL file with the in-tree parser (src/obs/json_verify.hpp) and checks
// the invariants the exporters promise:
//
//   trace:   top-level {"traceEvents": [...]}; every event has a string
//            "ph"; "X" events carry name/pid/tid/ts/dur with ts/dur >= 0;
//            "s"/"f" flow records carry name/cat/id/pid/tid/ts; at least
//            one "M" thread_name metadata record exists, so Perfetto
//            shows named tracks.
//   flow:    request flows in a trace are well-formed — every flow-finish
//            ("f") shares its correlation id with a flow-start ("s") that
//            precedes it, i.e. every completed request's submit and
//            complete spans carry one id. Flow-starts without a finish are
//            tolerated: requests in flight at export time and spans lost
//            to ring wraparound legitimately leave an unmatched start.
//            --flow-min N additionally requires >= N fully-matched flows.
//   metrics: every line is one object with a "host" block ({cpus, simd})
//            and "counters"/"gauges"/"histograms" objects; histogram
//            bucket-count arrays are one longer than their bounds
//            (overflow bucket).
//   exporter-jsonl: every line is one delta window from obs::Exporter —
//            consecutive indices from 0, end_ms >= start_ms, counter
//            deltas/rates >= 0, monotone window quantiles p50 <= p95 <=
//            p99, and the last line is the drain window (final: true).
//
//   bench-serve: a bench JSON written by serve_bench — one "host" block,
//            a non-empty "records" array, and a "serve" block whose
//            "points" each carry monotone p50 <= p95 <= p99 latencies and
//            whose "gates" verdicts (including the telemetry-overhead
//            gate) are present.
//
//   bench-chip: a bench JSON written by chip_bench — host + records plus a
//            "chip" block with the tiling geometry (positive core_nm),
//            positive golden/learned contacts_per_s rates, a divergence
//            block with printed_match_frac in [0, 1], and the streaming
//            gate verdicts (coverage, ring_bounded, learned_steady_allocs,
//            plan_warmup_only, pass).
//
//   obs_validate --trace out.json --flow out.json --metrics out.jsonl \
//                --exporter-jsonl windows.jsonl --bench-serve BENCH_serve.json \
//                --bench-chip BENCH_chip.json
//
// Exits nonzero with a message on the first violation.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "obs/json_verify.hpp"
#include "util/cli.hpp"

using lithogan::obs::json::Value;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

void require(bool ok, const std::string& what) {
  if (!ok) throw std::runtime_error(what);
}

const Value& field(const Value& obj, const char* key, const std::string& where) {
  const Value* v = obj.get(key);
  require(v != nullptr, where + ": missing \"" + key + "\"");
  return *v;
}

void validate_trace(const std::string& path) {
  const Value root = lithogan::obs::json::parse(read_file(path));
  require(root.kind == Value::Kind::kObject, "trace: top level is not an object");
  const Value& events = field(root, "traceEvents", "trace");
  require(events.kind == Value::Kind::kArray, "trace: traceEvents is not an array");

  std::size_t complete = 0;
  std::size_t flows = 0;
  std::size_t thread_names = 0;
  for (std::size_t i = 0; i < events.array.size(); ++i) {
    const Value& e = *events.array[i];
    const std::string where = "trace event " + std::to_string(i);
    require(e.kind == Value::Kind::kObject, where + ": not an object");
    const Value& ph = field(e, "ph", where);
    require(ph.kind == Value::Kind::kString, where + ": ph is not a string");
    if (ph.string == "X") {
      ++complete;
      require(field(e, "name", where).kind == Value::Kind::kString,
              where + ": name is not a string");
      for (const char* k : {"pid", "tid", "ts", "dur"}) {
        const Value& n = field(e, k, where);
        require(n.kind == Value::Kind::kNumber,
                where + ": " + k + " is not a number");
        require(n.number >= 0.0, where + ": " + k + " is negative");
      }
    } else if (ph.string == "s" || ph.string == "f") {
      ++flows;
      require(field(e, "name", where).kind == Value::Kind::kString,
              where + ": name is not a string");
      require(field(e, "cat", where).kind == Value::Kind::kString,
              where + ": cat is not a string");
      require(field(e, "id", where).kind == Value::Kind::kString,
              where + ": id is not a string");
      for (const char* k : {"pid", "tid", "ts"}) {
        const Value& n = field(e, k, where);
        require(n.kind == Value::Kind::kNumber && n.number >= 0.0,
                where + ": " + k + " is not a non-negative number");
      }
    } else if (ph.string == "M") {
      const Value& name = field(e, "name", where);
      require(name.kind == Value::Kind::kString, where + ": name is not a string");
      if (name.string == "thread_name") ++thread_names;
    } else {
      throw std::runtime_error(where + ": unexpected ph \"" + ph.string + "\"");
    }
  }
  require(thread_names >= 1, "trace: no thread_name metadata record");
  std::printf("trace OK: %s (%zu complete events, %zu flow records, "
              "%zu named tracks)\n",
              path.c_str(), complete, flows, thread_names);
}

/// One correlation id's flow records: earliest start and latest/earliest
/// finish timestamps seen.
struct FlowGroup {
  std::size_t starts = 0;
  std::size_t finishes = 0;
  double max_start_ts = 0.0;
  double min_finish_ts = 0.0;
};

void validate_flow(const std::string& path, std::int64_t min_matched) {
  const Value root = lithogan::obs::json::parse(read_file(path));
  require(root.kind == Value::Kind::kObject, "flow: top level is not an object");
  const Value& events = field(root, "traceEvents", "flow");
  require(events.kind == Value::Kind::kArray, "flow: traceEvents is not an array");

  std::map<std::string, FlowGroup> groups;
  for (std::size_t i = 0; i < events.array.size(); ++i) {
    const Value& e = *events.array[i];
    const std::string where = "flow event " + std::to_string(i);
    if (e.kind != Value::Kind::kObject) continue;
    const Value* ph = e.get("ph");
    if (ph == nullptr || ph->kind != Value::Kind::kString) continue;
    if (ph->string != "s" && ph->string != "f") continue;
    const Value& id = field(e, "id", where);
    require(id.kind == Value::Kind::kString, where + ": id is not a string");
    const Value& ts = field(e, "ts", where);
    require(ts.kind == Value::Kind::kNumber, where + ": ts is not a number");
    FlowGroup& g = groups[id.string];
    if (ph->string == "s") {
      if (g.starts == 0 || ts.number > g.max_start_ts) g.max_start_ts = ts.number;
      ++g.starts;
    } else {
      if (g.finishes == 0 || ts.number < g.min_finish_ts) g.min_finish_ts = ts.number;
      ++g.finishes;
    }
  }

  std::size_t matched = 0;
  std::size_t unmatched_starts = 0;
  for (const auto& [id, g] : groups) {
    // A finish with no start means the correlation id was never stamped on
    // the submit side — broken propagation, not a benign drop.
    require(g.finishes == 0 || g.starts > 0,
            "flow id " + id + ": flow-finish with no flow-start");
    if (g.starts > 0 && g.finishes > 0) {
      require(g.max_start_ts <= g.min_finish_ts,
              "flow id " + id + ": flow-finish precedes its flow-start");
      ++matched;
    } else if (g.starts > 0) {
      ++unmatched_starts;  // in flight at export, or finish lost to wraparound
    }
  }
  require(static_cast<std::int64_t>(matched) >= min_matched,
          "flow: only " + std::to_string(matched) + " matched flows, need >= " +
              std::to_string(min_matched));
  std::printf("flow OK: %s (%zu matched request flows, %zu in-flight/unmatched "
              "starts)\n",
              path.c_str(), matched, unmatched_starts);
}

void validate_exporter_jsonl(const std::string& path) {
  std::ifstream is(path);
  require(static_cast<bool>(is), "cannot open " + path);
  std::string line;
  std::size_t lines = 0;
  bool last_final = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::string where = "exporter window " + std::to_string(lines);
    const Value root = lithogan::obs::json::parse(line);
    require(root.kind == Value::Kind::kObject, where + ": not an object");

    const Value& w = field(root, "window", where);
    require(w.kind == Value::Kind::kObject, where + ": window is not an object");
    const Value& index = field(w, "index", where);
    require(index.kind == Value::Kind::kNumber &&
                index.number == static_cast<double>(lines),
            where + ": window indices are not consecutive from 0");
    const Value& start_ms = field(w, "start_ms", where);
    const Value& end_ms = field(w, "end_ms", where);
    require(start_ms.kind == Value::Kind::kNumber &&
                end_ms.kind == Value::Kind::kNumber,
            where + ": start_ms/end_ms are not numbers");
    require(end_ms.number >= start_ms.number, where + ": end_ms < start_ms");
    const Value& final_flag = field(w, "final", where);
    require(final_flag.kind == Value::Kind::kBool, where + ": final is not a bool");
    last_final = final_flag.boolean;

    const Value& counters = field(root, "counters", where);
    require(counters.kind == Value::Kind::kObject,
            where + ": counters is not an object");
    for (const auto& [name, cp] : counters.object) {
      const std::string cw = where + " counter " + name;
      require(cp->kind == Value::Kind::kObject, cw + ": not an object");
      for (const char* k : {"delta", "rate_per_s"}) {
        const Value& n = field(*cp, k, cw);
        require(n.kind == Value::Kind::kNumber && n.number >= 0.0,
                cw + ": " + k + " is not a non-negative number");
      }
    }
    const Value& gauges = field(root, "gauges", where);
    require(gauges.kind == Value::Kind::kObject, where + ": gauges is not an object");
    for (const auto& [name, gp] : gauges.object) {
      require(gp->kind == Value::Kind::kNumber || gp->kind == Value::Kind::kNull,
              where + " gauge " + name + ": not a number");
    }
    const Value& histograms = field(root, "histograms", where);
    require(histograms.kind == Value::Kind::kObject,
            where + ": histograms is not an object");
    for (const auto& [name, hp] : histograms.object) {
      const std::string hw = where + " histogram " + name;
      require(hp->kind == Value::Kind::kObject, hw + ": not an object");
      const Value& count = field(*hp, "count", hw);
      require(count.kind == Value::Kind::kNumber && count.number >= 0.0,
              hw + ": count is not a non-negative number");
      require(field(*hp, "sum", hw).kind == Value::Kind::kNumber,
              hw + ": sum is not a number");
      double q[3] = {0, 0, 0};
      const char* keys[3] = {"p50", "p95", "p99"};
      for (int k = 0; k < 3; ++k) {
        const Value& n = field(*hp, keys[k], hw);
        require(n.kind == Value::Kind::kNumber, hw + ": " + keys[k] + " is not a number");
        q[k] = n.number;
      }
      require(q[0] <= q[1] && q[1] <= q[2], hw + ": window quantiles not monotone");
    }
    ++lines;
  }
  require(lines >= 1, "exporter-jsonl: file has no window lines");
  require(last_final, "exporter-jsonl: last window is not the drain window "
                      "(final: true) — shutdown did not drain");
  std::printf("exporter-jsonl OK: %s (%zu windows, drained)\n", path.c_str(), lines);
}

void validate_metrics(const std::string& path) {
  std::ifstream is(path);
  require(static_cast<bool>(is), "cannot open " + path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ++lines;
    const std::string where = "metrics line " + std::to_string(lines);
    const Value root = lithogan::obs::json::parse(line);
    require(root.kind == Value::Kind::kObject, where + ": not an object");

    const Value& host = field(root, "host", where);
    require(host.kind == Value::Kind::kObject, where + ": host is not an object");
    require(field(host, "cpus", where).kind == Value::Kind::kNumber,
            where + ": host.cpus is not a number");
    require(field(host, "simd", where).kind == Value::Kind::kString,
            where + ": host.simd is not a string");

    for (const char* section : {"counters", "gauges", "histograms"}) {
      require(field(root, section, where).kind == Value::Kind::kObject,
              where + ": " + section + " is not an object");
    }
    const Value& histograms = *root.get("histograms");
    for (const auto& [name, hp] : histograms.object) {
      const Value& h = *hp;
      const std::string hw = where + " histogram " + name;
      require(h.kind == Value::Kind::kObject, hw + ": not an object");
      const Value& bounds = field(h, "bounds", hw);
      const Value& counts = field(h, "counts", hw);
      require(bounds.kind == Value::Kind::kArray && counts.kind == Value::Kind::kArray,
              hw + ": bounds/counts are not arrays");
      require(counts.array.size() == bounds.array.size() + 1,
              hw + ": counts must be bounds + overflow bucket");
    }
  }
  require(lines >= 1, "metrics: file has no snapshot lines");
  std::printf("metrics OK: %s (%zu snapshot lines)\n", path.c_str(), lines);
}

void validate_bench_serve(const std::string& path) {
  const Value root = lithogan::obs::json::parse(read_file(path));
  require(root.kind == Value::Kind::kObject, "bench-serve: top level is not an object");

  const Value& host = field(root, "host", "bench-serve");
  require(host.kind == Value::Kind::kObject, "bench-serve: host is not an object");
  require(field(host, "cpus", "bench-serve host").kind == Value::Kind::kNumber,
          "bench-serve: host.cpus is not a number");
  const Value& records = field(root, "records", "bench-serve");
  require(records.kind == Value::Kind::kArray && !records.array.empty(),
          "bench-serve: records is not a non-empty array");

  const Value& serve = field(root, "serve", "bench-serve");
  require(serve.kind == Value::Kind::kObject, "bench-serve: serve is not an object");
  for (const char* k : {"batch", "wait_us", "queue_capacity", "serial_qps"}) {
    require(field(serve, k, "bench-serve serve").kind == Value::Kind::kNumber,
            std::string("bench-serve: serve.") + k + " is not a number");
  }
  const Value& points = field(serve, "points", "bench-serve serve");
  require(points.kind == Value::Kind::kArray && !points.array.empty(),
          "bench-serve: serve.points is not a non-empty array");
  for (std::size_t i = 0; i < points.array.size(); ++i) {
    const Value& p = *points.array[i];
    const std::string where = "bench-serve point " + std::to_string(i);
    require(p.kind == Value::Kind::kObject, where + ": not an object");
    for (const char* k : {"qps_offered", "qps_achieved", "p50_us", "p95_us",
                          "p99_us", "completed", "rejected"}) {
      const Value& n = field(p, k, where);
      require(n.kind == Value::Kind::kNumber && n.number >= 0.0,
              where + ": " + k + " is not a non-negative number");
    }
    const double p50 = p.get("p50_us")->number;
    const double p95 = p.get("p95_us")->number;
    const double p99 = p.get("p99_us")->number;
    require(p50 <= p95 && p95 <= p99, where + ": percentiles not monotone");
  }
  const Value& hist = field(serve, "batch_hist", "bench-serve serve");
  require(hist.kind == Value::Kind::kArray && !hist.array.empty(),
          "bench-serve: serve.batch_hist is not a non-empty array");
  const Value& gates = field(serve, "gates", "bench-serve serve");
  require(gates.kind == Value::Kind::kObject, "bench-serve: gates is not an object");
  require(field(gates, "throughput_vs_serial", "bench-serve gates").kind ==
              Value::Kind::kBool,
          "bench-serve: gates.throughput_vs_serial is not a bool");
  require(field(gates, "dispatch_allocs", "bench-serve gates").kind ==
              Value::Kind::kNumber,
          "bench-serve: gates.dispatch_allocs is not a number");
  require(field(gates, "telemetry_ok", "bench-serve gates").kind ==
              Value::Kind::kBool,
          "bench-serve: gates.telemetry_ok is not a bool");
  require(field(gates, "telemetry_overhead", "bench-serve gates").kind ==
              Value::Kind::kNumber,
          "bench-serve: gates.telemetry_overhead is not a number");
  require(field(gates, "pass", "bench-serve gates").kind == Value::Kind::kBool,
          "bench-serve: gates.pass is not a bool");
  std::printf("bench-serve OK: %s (%zu load points)\n", path.c_str(),
              points.array.size());
}

void validate_bench_chip(const std::string& path) {
  const Value root = lithogan::obs::json::parse(read_file(path));
  require(root.kind == Value::Kind::kObject, "bench-chip: top level is not an object");

  const Value& host = field(root, "host", "bench-chip");
  require(host.kind == Value::Kind::kObject, "bench-chip: host is not an object");
  require(field(host, "cpus", "bench-chip host").kind == Value::Kind::kNumber,
          "bench-chip: host.cpus is not a number");
  const Value& records = field(root, "records", "bench-chip");
  require(records.kind == Value::Kind::kArray && !records.array.empty(),
          "bench-chip: records is not a non-empty array");

  const Value& chip = field(root, "chip", "bench-chip");
  require(chip.kind == Value::Kind::kObject, "bench-chip: chip is not an object");
  for (const char* k : {"chip_nm", "tile_nm", "tile_px", "halo_nm", "core_nm",
                        "tiles", "contacts", "ring_slots", "ring_bytes"}) {
    const Value& n = field(chip, k, "bench-chip chip");
    require(n.kind == Value::Kind::kNumber && n.number >= 0.0,
            std::string("bench-chip: chip.") + k + " is not a non-negative number");
  }
  // The tile must always be wider than two halos, or there is no core.
  require(chip.get("core_nm")->number > 0.0, "bench-chip: chip.core_nm is not positive");
  for (const char* block : {"golden", "learned"}) {
    const Value& b = field(chip, block, "bench-chip chip");
    const std::string where = std::string("bench-chip ") + block;
    require(b.kind == Value::Kind::kObject, where + ": not an object");
    const Value& rate = field(b, "contacts_per_s", where);
    require(rate.kind == Value::Kind::kNumber && rate.number > 0.0,
            where + ": contacts_per_s is not positive");
    require(field(b, "seconds", where).kind == Value::Kind::kNumber,
            where + ": seconds is not a number");
  }
  const Value& div = field(chip, "divergence", "bench-chip chip");
  require(div.kind == Value::Kind::kObject, "bench-chip: divergence is not an object");
  const Value& frac = field(div, "printed_match_frac", "bench-chip divergence");
  require(frac.kind == Value::Kind::kNumber && frac.number >= 0.0 && frac.number <= 1.0,
          "bench-chip: divergence.printed_match_frac is not in [0, 1]");
  require(field(div, "mean_cd_delta_nm", "bench-chip divergence").kind ==
              Value::Kind::kNumber,
          "bench-chip: divergence.mean_cd_delta_nm is not a number");
  const Value& gates = field(chip, "gates", "bench-chip chip");
  require(gates.kind == Value::Kind::kObject, "bench-chip: gates is not an object");
  for (const char* k : {"coverage", "ring_bounded", "plan_warmup_only", "pass"}) {
    require(field(gates, k, "bench-chip gates").kind == Value::Kind::kBool,
            std::string("bench-chip: gates.") + k + " is not a bool");
  }
  require(field(gates, "learned_steady_allocs", "bench-chip gates").kind ==
              Value::Kind::kNumber,
          "bench-chip: gates.learned_steady_allocs is not a number");
  std::printf("bench-chip OK: %s (%.0f contacts over %.0f tiles)\n", path.c_str(),
              chip.get("contacts")->number, chip.get("tiles")->number);
}

}  // namespace

int main(int argc, char** argv) {
  lithogan::util::CliParser cli("Validate observability outputs (trace JSON, metrics JSONL).");
  cli.add_flag("trace", "", "Chrome trace-event JSON file to validate")
      .add_flag("flow", "",
                "trace JSON whose request flows to validate (correlation-ID "
                "matching between flow-starts and flow-finishes)")
      .add_flag("flow-min", "0", "minimum fully-matched request flows for --flow")
      .add_flag("metrics", "", "metrics JSONL file to validate")
      .add_flag("exporter-jsonl", "",
                "windowed-exporter JSONL file to validate (obs::Exporter)")
      .add_flag("bench-serve", "", "serve_bench JSON file to validate")
      .add_flag("bench-chip", "", "chip_bench JSON file to validate");
  if (!cli.parse(argc, argv)) {
    std::printf("%s", cli.usage().c_str());
    return 2;
  }
  try {
    const std::string trace = cli.get("trace");
    const std::string flow = cli.get("flow");
    const std::string metrics = cli.get("metrics");
    const std::string exporter_jsonl = cli.get("exporter-jsonl");
    const std::string bench_serve = cli.get("bench-serve");
    const std::string bench_chip = cli.get("bench-chip");
    if (trace.empty() && flow.empty() && metrics.empty() && exporter_jsonl.empty() &&
        bench_serve.empty() && bench_chip.empty()) {
      std::fprintf(stderr,
                   "obs_validate: nothing to do (pass --trace, --flow, --metrics, "
                   "--exporter-jsonl, --bench-serve and/or --bench-chip)\n");
      return 2;
    }
    if (!trace.empty()) validate_trace(trace);
    if (!flow.empty()) validate_flow(flow, cli.get_int("flow-min"));
    if (!metrics.empty()) validate_metrics(metrics);
    if (!exporter_jsonl.empty()) validate_exporter_jsonl(exporter_jsonl);
    if (!bench_serve.empty()) validate_bench_serve(bench_serve);
    if (!bench_chip.empty()) validate_bench_chip(bench_chip);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "obs_validate: FAIL: %s\n", e.what());
    return 1;
  }
  return 0;
}
