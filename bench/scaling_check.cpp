// Scaling smoke gate: representative parallelized ops must not get SLOWER
// when the worker count rises. Each op is timed best-of-N at 1 thread and
// at 8 threads in the same process; the check fails (nonzero exit) if any
// op's 8-thread time exceeds 1.15x its 1-thread time.
//
// Two regimes are covered deliberately:
//   - ops above the dispatch-cost gate (GEMM, FFT, large tanh) really fan
//     out on multicore hosts, so a thundering-herd or barrier regression
//     shows up as 8t >> 1t;
//   - ops below the gate (the small conv) run inline at every thread
//     count, so a broken gate (dispatching tiny work) also trips the 1.15x
//     bound.
// On a single-hardware-thread host the cost gate inlines every hinted op,
// so 8t == 1t within noise and the bound holds trivially — the gate is what
// this binary then certifies.
//
// Tolerance override: LITHOGAN_SCALING_TOLERANCE (default 1.15).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "chip/layout.hpp"
#include "chip/pipeline.hpp"
#include "core/config.hpp"
#include "core/lithogan.hpp"
#include "data/sample.hpp"
#include "litho/simulator.hpp"
#include "image/ops.hpp"
#include "math/conv.hpp"
#include "math/fft.hpp"
#include "math/gemm.hpp"
#include "serve/server.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/infer.hpp"
#include "nn/sequential.hpp"
#include "nn/tensor.hpp"
#include "util/exec_context.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "util/workspace.hpp"

using namespace lithogan;

namespace {

/// Best-of-`reps` seconds per iteration of `body`.
double best_of(std::size_t reps, std::size_t iters,
               const std::function<void()>& body) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < reps; ++r) {
    util::Timer t;
    for (std::size_t i = 0; i < iters; ++i) body();
    best = std::min(best, t.elapsed_seconds() / static_cast<double>(iters));
  }
  return best;
}

struct Op {
  std::string name;
  std::size_t iters;
  std::function<void(util::ExecContext*)> run;
};

}  // namespace

int main() {
  double tolerance = 1.15;
  if (const char* env = std::getenv("LITHOGAN_SCALING_TOLERANCE")) {
    const double v = std::atof(env);
    if (v > 1.0) tolerance = v;
  }

  util::Rng rng(7);

  // GEMM 192^3: ~14M multiply-adds, well above the dispatch gate.
  const std::size_t n = 192;
  std::vector<float> a(n * n);
  std::vector<float> b(n * n);
  std::vector<float> c(n * n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));

  // 256x256 complex FFT: each row/column stage is ~2.6M scalar ops.
  const std::size_t fft_n = 256;
  std::vector<math::Complex> spectrum_seed(fft_n * fft_n);
  for (auto& v : spectrum_seed) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};

  // Large tanh: 8*128*128 elements at ~32 ops each crosses the gate.
  nn::Tanh tanh_op;
  const auto tanh_x = nn::Tensor::randn({1, 8, 128, 128}, rng);

  // Small conv (batch 4, 16->32, 32x32): below the gate, runs inline at
  // every thread count — certifies the gate itself.
  nn::Conv2d conv(16, 32, 5, 2, 2, rng);
  const auto conv_x = nn::Tensor::randn({4, 16, 32, 32}, rng);

  // InferencePlan (batch 8, conv-bn-act-deconv-act at 32x32): the serving
  // path's outer batch-parallel dispatch, one sample per worker with inner
  // kernels serial.
  nn::Sequential infer_net;
  infer_net.emplace<nn::Conv2d>(4, 16, 3, 2, 1, rng);
  infer_net.emplace<nn::BatchNorm2d>(16);
  infer_net.emplace<nn::LeakyReLU>(0.2f);
  infer_net.emplace<nn::ConvTranspose2d>(16, 1, 3, 2, 1, 1, rng);
  infer_net.emplace<nn::Tanh>();
  infer_net.set_training(false);
  nn::InferencePlan infer_plan;
  infer_plan.compile(infer_net, {4, 32, 32});
  const auto infer_x = nn::Tensor::randn({8, 4, 32, 32}, rng);

  // Conv engine via a cost-model plan (batch 8, 3->64 at 64x64): the
  // engine's own two-level dispatch — batch-parallel outer, serial inner —
  // exercised directly at the math layer rather than through a module.
  const std::size_t ce_in_c = 3, ce_hw = 64, ce_out_c = 64, ce_k = 5;
  math::ConvKey ce_key;
  ce_key.in_c = ce_in_c;
  ce_key.in_h = ce_hw;
  ce_key.in_w = ce_hw;
  ce_key.out_c = ce_out_c;
  ce_key.kernel = ce_k;
  ce_key.stride = 2;
  ce_key.pad = 2;
  const auto ce_plan = math::conv_plan(ce_key);
  std::vector<float> ce_src(8 * ce_in_c * ce_hw * ce_hw);
  std::vector<float> ce_w(ce_out_c * ce_in_c * ce_k * ce_k);
  std::vector<float> ce_bias(ce_out_c);
  for (auto& v : ce_src) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : ce_w) v = static_cast<float>(rng.uniform(-1, 1));
  math::Epilogue ce_epi;
  ce_epi.bias = ce_bias.data();
  ce_epi.bias_per_row = true;
  ce_epi.act = math::Activation::kLeakyRelu;
  std::vector<float> ce_dst(8 * ce_out_c * ce_plan->out_h * ce_plan->out_w);
  util::Workspace ce_ws;

  util::ExecContext exec1(1);
  util::ExecContext exec8(8);

  // Serving layer p99 path (tiny model, batch-of-16 dispatch): one server
  // per exec context so the scheduler's predict_batch_into inherits the
  // plan's thread count. Submitting a full batch and waiting for the last
  // response times the tail a saturated client sees.
  core::LithoGanConfig serve_cfg = core::LithoGanConfig::tiny();
  serve_cfg.image_size = 16;
  serve_cfg.base_channels = 6;
  serve_cfg.max_channels = 24;
  std::vector<data::Sample> serve_samples;
  for (std::size_t i = 0; i < 16; ++i) {
    data::Sample s;
    s.clip_id = "scale-" + std::to_string(i);
    s.resist_pixel_nm = 8.0;
    s.mask_rgb = image::Image(3, serve_cfg.image_size, serve_cfg.image_size);
    image::fill_rect(s.mask_rgb, 1, {{4.0, 4.0}, {12.0, 12.0}}, 1.0f);
    serve_samples.push_back(std::move(s));
  }
  core::LithoGanConfig serve_cfg1 = serve_cfg;
  serve_cfg1.exec = &exec1;
  core::LithoGanConfig serve_cfg8 = serve_cfg;
  serve_cfg8.exec = &exec8;
  core::LithoGan serve_model1(serve_cfg1, core::Mode::kPlainCgan);
  core::LithoGan serve_model8(serve_cfg8, core::Mode::kPlainCgan);
  serve::Config serve_sc;
  serve_sc.max_batch = 16;
  // Large timeout: all 16 submits land well inside it, so every dispatch
  // rides the deterministic batch-full trigger — timing the op never races
  // the timeout trigger, keeping the 1t/8t ratio noise-free.
  serve_sc.max_wait_us = 50'000;
  serve::Server serve_server1(serve_model1, serve_sc);
  serve::Server serve_server8(serve_model8, serve_sc);

  // Chip tile streaming (2x2 tiles, reduced source): the chip pipeline's
  // wave dispatch — one golden tile simulation per worker, with persistent
  // per-worker simulator clones — timed end to end over a small generated
  // chip. One pipeline per exec context so each keeps its own warm clones.
  litho::ProcessConfig chip_process = litho::ProcessConfig::n10();
  chip_process.optical.source_rings = 1;
  chip_process.optical.source_points_per_ring = 8;
  litho::Simulator chip_calib(chip_process);
  chip_calib.calibrate_dose();
  chip::ChipConfig chip_cfg;
  chip_cfg.chip_nm = 800.0;
  chip_cfg.tile_extent_nm = 1024.0;
  chip_cfg.tile_pixels = 256;
  chip_cfg.halo_lobes = 1.0;
  chip_cfg.ring_depth = 2;
  const chip::ChipLayout chip_layout(chip_calib.process(), chip_cfg);
  chip::ChipPipeline chip_pipe1(chip_calib.process(), chip_layout, &exec1);
  chip::ChipPipeline chip_pipe8(chip_calib.process(), chip_layout, &exec8);

  std::vector<Op> ops;
  ops.push_back({"gemm_192", 16, [&](util::ExecContext* exec) {
                   math::gemm(n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data(), exec);
                 }});
  ops.push_back({"fft2d_256", 4, [&](util::ExecContext* exec) {
                   std::vector<math::Complex> data = spectrum_seed;
                   math::fft2d(data, fft_n, fft_n, false, exec);
                 }});
  ops.push_back({"tanh_8x128x128", 8, [&](util::ExecContext* exec) {
                   tanh_op.set_exec_context(exec);
                   auto y = tanh_op.forward(tanh_x);
                 }});
  ops.push_back({"conv2d_small", 4, [&](util::ExecContext* exec) {
                   conv.set_exec_context(exec);
                   auto y = conv.forward(conv_x);
                 }});
  ops.push_back({"conv_plan", 4, [&](util::ExecContext* exec) {
                   math::conv2d_forward(*ce_plan, 8, ce_src.data(), ce_w.data(),
                                        nullptr, ce_epi, ce_dst.data(), exec, ce_ws);
                 }});
  ops.push_back({"infer_plan_b8", 4, [&](util::ExecContext* exec) {
                   infer_plan.set_exec_context(exec);
                   (void)infer_plan.infer(infer_x);
                 }});
  ops.push_back({"chip_tile", 1, [&](util::ExecContext* exec) {
                   chip::ChipPipeline& pipe =
                       exec == &exec8 ? chip_pipe8 : chip_pipe1;
                   std::size_t done = 0;
                   pipe.run_golden(
                       [&done](std::size_t,
                               std::span<const chip::ContactResult> r) {
                         done += r.size();
                       });
                 }});
  ops.push_back({"serve_p99", 2, [&](util::ExecContext* exec) {
                   serve::Server& server =
                       exec == &exec8 ? serve_server8 : serve_server1;
                   std::vector<serve::Ticket> tickets;
                   tickets.reserve(serve_samples.size());
                   for (const auto& s : serve_samples) {
                     tickets.push_back(server.submit(s));
                   }
                   for (const auto& t : tickets) (void)server.wait(t);
                 }});

  std::printf("scaling smoke — 8-thread time must stay within %.2fx of 1-thread:\n",
              tolerance);
  std::printf("  %-16s %12s %12s %8s\n", "op", "1t (us)", "8t (us)", "ratio");
  bool ok = true;
  for (const Op& op : ops) {
    // Warm both contexts (pool spin-up, allocator, code paths) before timing.
    op.run(&exec1);
    op.run(&exec8);
    const double t1 = best_of(7, op.iters, [&] { op.run(&exec1); });
    const double t8 = best_of(7, op.iters, [&] { op.run(&exec8); });
    const double ratio = t8 / std::max(t1, 1e-12);
    const bool pass = ratio <= tolerance;
    ok = ok && pass;
    std::printf("  %-16s %12.1f %12.1f %7.2fx  %s\n", op.name.c_str(), t1 * 1e6,
                t8 * 1e6, ratio, pass ? "ok" : "FAIL");
  }
  if (!ok) {
    std::printf("\nFAIL: an op is slower with 8 worker threads than with 1\n");
    return 1;
  }
  std::printf("\nall ops within tolerance\n");
  return 0;
}
