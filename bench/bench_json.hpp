// Machine-readable benchmark output shared by the engineering benches.
//
// Each bench binary appends BenchRecords as it runs and dumps them to a
// BENCH_<name>.json file next to the working directory on exit, so perf
// regressions can be tracked by diffing two JSON files instead of scraping
// console tables. The schema is one flat array of
//   {op, shape, threads, ns_per_iter, gflops_per_s}
// objects; gflops_per_s is 0 where no meaningful FLOP count exists (e.g.
// end-to-end flows).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace lithogan::bench {

struct BenchRecord {
  std::string op;     ///< operation name, e.g. "gemm" or "rigorous_sim"
  std::string shape;  ///< problem shape, e.g. "256" or "4x16x64x64"
  std::size_t threads = 1;
  double ns_per_iter = 0.0;
  double gflops_per_s = 0.0;
};

/// Writes `records` to `path` as a JSON array. op/shape must not contain
/// characters needing JSON escaping (they are controlled identifiers).
/// Returns false if the file could not be written.
inline bool write_bench_json(const std::string& path,
                             const std::vector<BenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f,
                 "  {\"op\": \"%s\", \"shape\": \"%s\", \"threads\": %zu, "
                 "\"ns_per_iter\": %.3f, \"gflops_per_s\": %.3f}%s\n",
                 r.op.c_str(), r.shape.c_str(), r.threads, r.ns_per_iter,
                 r.gflops_per_s, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  return std::fclose(f) == 0;
}

}  // namespace lithogan::bench
