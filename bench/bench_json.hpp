// Machine-readable benchmark output shared by the engineering benches.
//
// Each bench binary appends BenchRecords as it runs and dumps them to a
// BENCH_<name>.json file next to the working directory on exit, so perf
// regressions can be tracked by diffing two JSON files instead of scraping
// console tables. The schema is one object
//   {host: {cpus, simd}, records: [...]}
// where each record is
//   {op, shape, threads, ns_per_iter, gflops_per_s, speedup_vs_1t}.
// gflops_per_s is 0 where no meaningful FLOP count exists (e.g. end-to-end
// flows). speedup_vs_1t is this record's 1-thread baseline time (first
// record with the same op+shape at threads == 1) divided by its own time —
// >1 means scaling helps — and 0 when no baseline was benched. The host
// block pins what machine a trajectory was measured on, so cross-machine
// diffs are recognizable as such. A trailing "metrics" block snapshots the
// process-wide obs::Registry counters that explain perf deltas: FFT and
// conv plan cache hits/misses, the conv engine's per-algorithm execution
// mix (conv.algo.*), and the thread pool's inline-vs-dispatch decisions.
#pragma once

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "math/gemm.hpp"
#include "obs/metrics.hpp"

namespace lithogan::bench {

struct BenchRecord {
  std::string op;     ///< operation name, e.g. "gemm" or "rigorous_sim"
  std::string shape;  ///< problem shape, e.g. "256" or "4x16x64x64"
  std::size_t threads = 1;
  double ns_per_iter = 0.0;
  double gflops_per_s = 0.0;
  std::string dtype = "f32";  ///< weight/compute dtype of this row
};

/// 1-thread ns_per_iter for (op, shape), or 0 if none was benched.
inline double baseline_1t(const std::vector<BenchRecord>& records,
                          const BenchRecord& r) {
  for (const BenchRecord& b : records) {
    if (b.threads == 1 && b.op == r.op && b.shape == r.shape) return b.ns_per_iter;
  }
  return 0.0;
}

/// Writes `records` to `path` (schema above). op/shape must not contain
/// characters needing JSON escaping (they are controlled identifiers).
/// Returns false if the file could not be written.
inline bool write_bench_json(const std::string& path,
                             const std::vector<BenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"host\": {\"cpus\": %u, \"simd\": \"%s\"},\n  \"records\": [\n",
               std::thread::hardware_concurrency(), math::simd_level());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    const double base = baseline_1t(records, r);
    const double speedup =
        (base > 0.0 && r.ns_per_iter > 0.0) ? base / r.ns_per_iter : 0.0;
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"shape\": \"%s\", \"threads\": %zu, "
                 "\"dtype\": \"%s\", \"ns_per_iter\": %.3f, \"gflops_per_s\": %.3f, "
                 "\"speedup_vs_1t\": %.3f}%s\n",
                 r.op.c_str(), r.shape.c_str(), r.threads,
                 r.dtype.empty() ? "f32" : r.dtype.c_str(), r.ns_per_iter,
                 r.gflops_per_s, speedup, i + 1 < records.size() ? "," : "");
  }
  obs::Registry& reg = obs::Registry::global();
  std::fprintf(f,
               "  ],\n  \"metrics\": {\"fft.plan_cache.hit\": %llu, "
               "\"fft.plan_cache.miss\": %llu, \"conv.plan_cache.hit\": %llu, "
               "\"conv.plan_cache.miss\": %llu, \"conv.algo.im2col\": %llu, "
               "\"conv.algo.direct\": %llu, \"conv.algo.fft\": %llu, "
               "\"threadpool.jobs_inlined\": %llu, "
               "\"threadpool.jobs_dispatched\": %llu, "
               "\"quant.absmax_pass\": %llu, \"quant.saturated\": %llu, "
               "\"infer.weight_bytes\": %.0f}\n}\n",
               static_cast<unsigned long long>(reg.counter_value("fft.plan_cache.hit")),
               static_cast<unsigned long long>(reg.counter_value("fft.plan_cache.miss")),
               static_cast<unsigned long long>(reg.counter_value("conv.plan_cache.hit")),
               static_cast<unsigned long long>(reg.counter_value("conv.plan_cache.miss")),
               static_cast<unsigned long long>(reg.counter_value("conv.algo.im2col")),
               static_cast<unsigned long long>(reg.counter_value("conv.algo.direct")),
               static_cast<unsigned long long>(reg.counter_value("conv.algo.fft")),
               static_cast<unsigned long long>(reg.counter_value("threadpool.jobs_inlined")),
               static_cast<unsigned long long>(
                   reg.counter_value("threadpool.jobs_dispatched")),
               static_cast<unsigned long long>(reg.counter_value("quant.absmax_pass")),
               static_cast<unsigned long long>(reg.counter_value("quant.saturated")),
               reg.gauge("infer.weight_bytes").value());
  return std::fclose(f) == 0;
}

}  // namespace lithogan::bench
