// Machine-readable benchmark output shared by the engineering benches.
//
// Each bench binary appends BenchRecords as it runs and dumps them to a
// BENCH_<name>.json file next to the working directory on exit, so perf
// regressions can be tracked by diffing two JSON files instead of scraping
// console tables. The schema is one object
//   {host: {cpus, simd}, records: [...]}
// where each record is
//   {op, shape, threads, ns_per_iter, gflops_per_s, speedup_vs_1t}.
// gflops_per_s is 0 where no meaningful FLOP count exists (e.g. end-to-end
// flows). speedup_vs_1t is this record's 1-thread baseline time (first
// record with the same op+shape at threads == 1) divided by its own time —
// >1 means scaling helps — and 0 when no baseline was benched. The host
// block pins what machine a trajectory was measured on, so cross-machine
// diffs are recognizable as such. A trailing "metrics" block snapshots the
// process-wide obs::Registry counters that explain perf deltas: FFT and
// conv plan cache hits/misses, the conv engine's per-algorithm execution
// mix (conv.algo.*), the thread pool's inline-vs-dispatch decisions, and
// trace-ring wraparound losses (trace.spans_dropped) so a bench run that
// overflowed its span rings is visibly flagged.
#pragma once

#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "math/gemm.hpp"
#include "obs/json_verify.hpp"
#include "obs/metrics.hpp"

namespace lithogan::bench {

struct BenchRecord {
  std::string op;     ///< operation name, e.g. "gemm" or "rigorous_sim"
  std::string shape;  ///< problem shape, e.g. "256" or "4x16x64x64"
  std::size_t threads = 1;
  double ns_per_iter = 0.0;
  double gflops_per_s = 0.0;
  std::string dtype = "f32";  ///< weight/compute dtype of this row
  /// Regression direction of ns_per_iter for cross-run comparison: "lower"
  /// (the default — a time, bigger is worse) or "higher" (a rate such as
  /// contacts/s stored in ns_per_iter's slot, smaller is worse). The op
  /// name states the unit for "higher" records. tools/bench_compare flips
  /// its regression test per record based on this field.
  std::string dir = "lower";
};

/// 1-thread ns_per_iter for (op, shape), or 0 if none was benched.
inline double baseline_1t(const std::vector<BenchRecord>& records,
                          const BenchRecord& r) {
  for (const BenchRecord& b : records) {
    if (b.threads == 1 && b.op == r.op && b.shape == r.shape) return b.ns_per_iter;
  }
  return 0.0;
}

namespace detail {

/// Re-serializes a parsed JSON value (used to carry another bench's
/// top-level blocks through a merge unchanged).
inline void dump_value(std::FILE* f, const obs::json::Value& v) {
  using Kind = obs::json::Value::Kind;
  switch (v.kind) {
    case Kind::kNull:
      std::fprintf(f, "null");
      break;
    case Kind::kBool:
      std::fprintf(f, v.boolean ? "true" : "false");
      break;
    case Kind::kNumber:
      std::fprintf(f, "%.10g", v.number);
      break;
    case Kind::kString:
      std::fprintf(f, "\"%s\"", v.string.c_str());
      break;
    case Kind::kArray: {
      std::fprintf(f, "[");
      bool first = true;
      for (const auto& e : v.array) {
        std::fprintf(f, first ? "" : ", ");
        dump_value(f, *e);
        first = false;
      }
      std::fprintf(f, "]");
      break;
    }
    case Kind::kObject: {
      std::fprintf(f, "{");
      bool first = true;
      for (const auto& [key, value] : v.object) {
        std::fprintf(f, "%s\"%s\": ", first ? "" : ", ", key.c_str());
        dump_value(f, *value);
        first = false;
      }
      std::fprintf(f, "}");
      break;
    }
  }
}

inline std::string record_key(const std::string& op, const std::string& shape,
                              std::size_t threads, const std::string& dtype) {
  return op + '|' + shape + '|' + std::to_string(threads) + '|' +
         (dtype.empty() ? "f32" : dtype);
}

}  // namespace detail

/// Writes `records` to `path` (schema above). op/shape must not contain
/// characters needing JSON escaping (they are controlled identifiers).
/// Returns false if the file could not be written.
///
/// Merge semantics: when `path` already holds a bench JSON, the result is a
/// single document with ONE host block — new records replace existing rows
/// with the same (op, shape, threads, dtype) key, every other existing row
/// is kept (speedup_vs_1t is recomputed over the merged set), and top-level
/// blocks another bench wrote (e.g. "serve") are carried through untouched.
/// So several benches pointed at one file — or one bench re-run — compose
/// instead of clobbering or duplicating the host block. `extra_name` /
/// `extra_json` optionally attach one caller-owned top-level block
/// (extra_json must be a complete JSON value); it replaces any previous
/// block of the same name.
inline bool write_bench_json(const std::string& path,
                             const std::vector<BenchRecord>& records,
                             const std::string& extra_name = std::string(),
                             const std::string& extra_json = std::string()) {
  obs::json::Value existing;
  if (std::FILE* in = std::fopen(path.c_str(), "rb")) {
    std::string text;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) text.append(buf, n);
    std::fclose(in);
    try {
      existing = obs::json::parse(text);
    } catch (const obs::json::ParseError&) {
      existing = obs::json::Value();  // malformed predecessor: start fresh
    }
  }

  std::set<std::string> new_keys;
  for (const BenchRecord& r : records) {
    new_keys.insert(detail::record_key(r.op, r.shape, r.threads, r.dtype));
  }
  std::vector<BenchRecord> merged;
  if (const obs::json::Value* old = existing.get("records"); old && old->is_array()) {
    for (const auto& entry : old->array) {
      if (!entry->is_object()) continue;
      BenchRecord b;
      if (const auto* v = entry->get("op")) b.op = v->string;
      if (const auto* v = entry->get("shape")) b.shape = v->string;
      if (const auto* v = entry->get("threads")) {
        b.threads = static_cast<std::size_t>(v->number);
      }
      if (const auto* v = entry->get("dtype")) b.dtype = v->string;
      if (b.dtype.empty()) b.dtype = "f32";
      if (const auto* v = entry->get("ns_per_iter")) b.ns_per_iter = v->number;
      if (const auto* v = entry->get("gflops_per_s")) b.gflops_per_s = v->number;
      if (const auto* v = entry->get("dir")) b.dir = v->string;
      if (b.dir.empty()) b.dir = "lower";
      if (new_keys.count(detail::record_key(b.op, b.shape, b.threads, b.dtype)) == 0) {
        merged.push_back(std::move(b));
      }
    }
  }
  merged.insert(merged.end(), records.begin(), records.end());

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"host\": {\"cpus\": %u, \"simd\": \"%s\"},\n  \"records\": [\n",
               std::thread::hardware_concurrency(), math::simd_level());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const BenchRecord& r = merged[i];
    const double base = baseline_1t(merged, r);
    const double speedup =
        (base > 0.0 && r.ns_per_iter > 0.0) ? base / r.ns_per_iter : 0.0;
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"shape\": \"%s\", \"threads\": %zu, "
                 "\"dtype\": \"%s\", \"dir\": \"%s\", \"ns_per_iter\": %.3f, "
                 "\"gflops_per_s\": %.3f, \"speedup_vs_1t\": %.3f}%s\n",
                 r.op.c_str(), r.shape.c_str(), r.threads,
                 r.dtype.empty() ? "f32" : r.dtype.c_str(),
                 r.dir.empty() ? "lower" : r.dir.c_str(), r.ns_per_iter,
                 r.gflops_per_s, speedup, i + 1 < merged.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  if (existing.is_object()) {
    for (const auto& [key, value] : existing.object) {
      if (key == "host" || key == "records" || key == "metrics" || key == extra_name) {
        continue;
      }
      std::fprintf(f, "  \"%s\": ", key.c_str());
      detail::dump_value(f, *value);
      std::fprintf(f, ",\n");
    }
  }
  if (!extra_name.empty() && !extra_json.empty()) {
    std::fprintf(f, "  \"%s\": %s,\n", extra_name.c_str(), extra_json.c_str());
  }
  obs::Registry& reg = obs::Registry::global();
  std::fprintf(f,
               "  \"metrics\": {\"fft.plan_cache.hit\": %llu, "
               "\"fft.plan_cache.miss\": %llu, \"conv.plan_cache.hit\": %llu, "
               "\"conv.plan_cache.miss\": %llu, \"conv.algo.im2col\": %llu, "
               "\"conv.algo.direct\": %llu, \"conv.algo.fft\": %llu, "
               "\"threadpool.jobs_inlined\": %llu, "
               "\"threadpool.jobs_dispatched\": %llu, "
               "\"quant.absmax_pass\": %llu, \"quant.saturated\": %llu, "
               "\"trace.spans_dropped\": %llu, "
               "\"infer.weight_bytes\": %.0f}\n}\n",
               static_cast<unsigned long long>(reg.counter_value("fft.plan_cache.hit")),
               static_cast<unsigned long long>(reg.counter_value("fft.plan_cache.miss")),
               static_cast<unsigned long long>(reg.counter_value("conv.plan_cache.hit")),
               static_cast<unsigned long long>(reg.counter_value("conv.plan_cache.miss")),
               static_cast<unsigned long long>(reg.counter_value("conv.algo.im2col")),
               static_cast<unsigned long long>(reg.counter_value("conv.algo.direct")),
               static_cast<unsigned long long>(reg.counter_value("conv.algo.fft")),
               static_cast<unsigned long long>(reg.counter_value("threadpool.jobs_inlined")),
               static_cast<unsigned long long>(
                   reg.counter_value("threadpool.jobs_dispatched")),
               static_cast<unsigned long long>(reg.counter_value("quant.absmax_pass")),
               static_cast<unsigned long long>(reg.counter_value("quant.saturated")),
               static_cast<unsigned long long>(
                   reg.counter_value("trace.spans_dropped")),
               reg.gauge("infer.weight_bytes").value());
  return std::fclose(f) == 0;
}

}  // namespace lithogan::bench
