// Ablation: the paper's plain encoder-decoder generator (Table 1) vs the
// pix2pix U-Net generator with skip connections. Not a paper experiment —
// it probes a design choice the paper made silently (dropping the skips
// that pix2pix uses). Both arms train with an identical reduced schedule.
#include <cstdio>

#include "common.hpp"
#include "util/logging.hpp"

using namespace lithogan;

int main() {
  util::set_log_level(util::LogLevel::kWarn);
  bench::print_banner("Ablation — encoder-decoder (paper) vs U-Net generator",
                      "design-choice probe; the paper uses a plain encoder-decoder "
                      "where pix2pix uses a U-Net");

  const std::string node = "N10";
  const data::Dataset dataset = bench::bench_dataset(node);
  const data::Split split = bench::bench_split(dataset);

  core::LithoGanConfig cfg = bench::bench_config();
  cfg.epochs = std::max<std::size_t>(6, cfg.epochs / 3);  // short, equal budgets

  std::printf("\ntraining both arms for %zu epochs...\n", cfg.epochs);
  std::vector<eval::MethodReport> reports;
  for (const auto arch : {core::GeneratorArch::kEncoderDecoder, core::GeneratorArch::kUNet}) {
    const bool unet = arch == core::GeneratorArch::kUNet;
    core::LithoGan model(cfg, core::Mode::kPlainCgan, arch);
    const auto curves = model.train(dataset, split.train);
    auto report = bench::evaluate_model(model, dataset, split.test,
                                        unet ? "U-Net" : "Encoder-decoder");
    std::printf("  %-16s final l1 %.4f\n", unet ? "U-Net" : "Encoder-decoder",
                curves.back().l1);
    reports.push_back(report);
  }

  std::printf("\n%s\n", eval::format_table3(reports).c_str());
  const double delta = reports[0].ede_mean_nm - reports[1].ede_mean_nm;
  std::printf("EDE delta (encoder-decoder - U-Net): %+.2f nm\n", delta);
  std::printf("reading: skip connections shortcut fine spatial detail from the mask "
              "to the resist, usually helping at short training budgets; the paper's "
              "architecture trades that for a simpler model.\n");
  return 0;
}
