// Engineering micro-benchmarks for the lithography substrate: FFT, aerial
// imaging at fast vs rigorous settings, the resist stage, and contour
// extraction. These underpin the Table 4 runtime reproduction.
#include <benchmark/benchmark.h>

#include "geometry/marching_squares.hpp"
#include "litho/simulator.hpp"
#include "math/fft.hpp"
#include "util/rng.hpp"

using namespace lithogan;

static void BM_Fft2d(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<math::Complex> grid(n * n);
  for (auto& v : grid) v = math::Complex(rng.uniform(-1, 1), 0.0);
  for (auto _ : state) {
    auto copy = grid;
    math::fft2d(copy, n, n, false);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_Fft2d)->Arg(128)->Arg(256);

namespace {
litho::ProcessConfig process_with(std::size_t rings, std::size_t points,
                                  std::size_t focus) {
  auto p = litho::ProcessConfig::n10();
  p.grid.pixels = 128;
  p.optical.source_rings = rings;
  p.optical.source_points_per_ring = points;
  p.optical.focus_planes = focus;
  return p;
}

std::vector<geometry::Rect> bench_mask(const litho::ProcessConfig& p) {
  const double c = p.grid.extent_nm / 2.0;
  return {geometry::Rect::from_center({c, c}, 60, 60),
          geometry::Rect::from_center({c + 140, c}, 60, 60),
          geometry::Rect::from_center({c, c + 140}, 60, 60),
          geometry::Rect::from_center({c - 90, c}, 24, 80)};
}
}  // namespace

static void BM_AerialFast(benchmark::State& state) {
  const auto p = process_with(1, 8, 1);
  litho::Simulator sim(p);
  const auto mask = bench_mask(p);
  for (auto _ : state) {
    auto aerial = sim.aerial_image(mask);
    benchmark::DoNotOptimize(aerial.values.data());
  }
}
BENCHMARK(BM_AerialFast);

static void BM_AerialRigorous(benchmark::State& state) {
  const auto p = process_with(4, 16, 3);
  litho::Simulator sim(p);
  const auto mask = bench_mask(p);
  for (auto _ : state) {
    auto aerial = sim.aerial_image(mask);
    benchmark::DoNotOptimize(aerial.values.data());
  }
}
BENCHMARK(BM_AerialRigorous);

static void BM_FullSimulation(benchmark::State& state) {
  const auto p = process_with(1, 8, 1);
  litho::Simulator sim(p);
  sim.calibrate_dose();
  const auto mask = bench_mask(p);
  for (auto _ : state) {
    auto result = sim.run(mask);
    benchmark::DoNotOptimize(result.contours.data());
  }
}
BENCHMARK(BM_FullSimulation);

static void BM_MarchingSquares(benchmark::State& state) {
  const std::size_t n = 128;
  std::vector<double> grid(n * n);
  for (std::size_t y = 0; y < n; ++y) {
    for (std::size_t x = 0; x < n; ++x) {
      const double dx = static_cast<double>(x) - 64.0;
      const double dy = static_cast<double>(y) - 64.0;
      grid[y * n + x] = std::cos(dx / 6.0) * std::cos(dy / 6.0) -
                        0.3 * std::exp(-(dx * dx + dy * dy) / 900.0);
    }
  }
  for (auto _ : state) {
    auto contours = geometry::extract_contours(grid, n, n, 0.2);
    benchmark::DoNotOptimize(contours.data());
  }
}
BENCHMARK(BM_MarchingSquares);

BENCHMARK_MAIN();
