// Engineering micro-benchmarks for the neural-network substrate
// (google-benchmark): GEMM, conv forward/backward, generator inference.
// These are not paper experiments; they document the throughput on which
// the Table 4 runtime results stand.
//
// Each benchmark carries a trailing thread-count argument: 0 runs the seed
// serial path (no execution context), N >= 1 runs on an N-thread
// ExecContext. Results are bit-identical across the sweep by construction
// (see tests/determinism_test.cpp); only the wall time should move.
//
// Besides the console table, every run is appended to BENCH_micro_nn.json
// (override the path with LITHOGAN_BENCH_JSON) in the flat
// {op, shape, threads, ns_per_iter, gflops_per_s} schema of bench_json.hpp.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>

#include "bench_json.hpp"
#include "core/config.hpp"
#include "core/networks.hpp"
#include "math/conv.hpp"
#include "math/gemm.hpp"
#include "nn/conv.hpp"
#include "nn/im2col.hpp"
#include "nn/tensor.hpp"
#include "util/exec_context.hpp"
#include "util/rng.hpp"
#include "util/workspace.hpp"

using namespace lithogan;

namespace {

/// Thread-count operand -> context. 0 means "no context" (serial seed path).
std::unique_ptr<util::ExecContext> make_exec(std::int64_t threads) {
  if (threads <= 0) return nullptr;
  return std::make_unique<util::ExecContext>(static_cast<std::size_t>(threads));
}

void set_thread_counters(benchmark::State& state) {
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(std::max<std::int64_t>(1, state.range(1))));
}

/// Per-iteration FLOP count, read back by the JSON reporter to derive GF/s.
/// Counts GEMM multiply-adds only (im2col/bias traffic excluded), so the
/// number is comparable across kernel generations.
void set_flops_counter(benchmark::State& state, double flops_per_iter) {
  state.counters["flops"] = benchmark::Counter(flops_per_iter);
}

}  // namespace

static void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto exec = make_exec(state.range(1));
  util::Rng rng(1);
  std::vector<float> a(n * n);
  std::vector<float> b(n * n);
  std::vector<float> c(n * n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    math::gemm(n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data(), exec.get());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * n * n * n);
  set_thread_counters(state);
  set_flops_counter(state, 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                               static_cast<double>(n));
}
BENCHMARK(BM_Gemm)->ArgsProduct({{64, 128, 256}, {0, 1, 2, 4, 8}});

static void BM_Conv2dForward(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto exec = make_exec(state.range(1));
  util::Rng rng(2);
  nn::Conv2d conv(16, 32, 5, 2, 2, rng);
  conv.set_exec_context(exec.get());
  // Batch of 4 so the batch-parallel path (one sample per task, per-thread
  // im2col workspaces) is what the sweep exercises.
  const auto x = nn::Tensor::randn({4, 16, size, size}, rng);
  for (auto _ : state) {
    auto y = conv.forward(x);
    benchmark::DoNotOptimize(y.raw());
  }
  set_thread_counters(state);
  // 4 samples x (out_ch x out_plane x in_ch*k*k) multiply-adds.
  const double cols = static_cast<double>(nn::conv_out_size(size, 5, 2, 2));
  set_flops_counter(state, 4.0 * 2.0 * 32.0 * cols * cols * (16.0 * 25.0));
}
BENCHMARK(BM_Conv2dForward)->ArgsProduct({{32, 64}, {0, 1, 2, 4, 8}});

static void BM_Conv2dBackward(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto exec = make_exec(state.range(1));
  util::Rng rng(3);
  nn::Conv2d conv(16, 32, 5, 2, 2, rng);
  conv.set_exec_context(exec.get());
  const auto x = nn::Tensor::randn({4, 16, size, size}, rng);
  const auto y = conv.forward(x);
  const auto g = nn::Tensor::randn(y.shape(), rng);
  for (auto _ : state) {
    auto gx = conv.backward(g);
    benchmark::DoNotOptimize(gx.raw());
  }
  set_thread_counters(state);
  // Weight-gradient and data-gradient GEMMs each match the forward GEMM's
  // FLOP count.
  const double cols = static_cast<double>(nn::conv_out_size(size, 5, 2, 2));
  set_flops_counter(state, 2.0 * 4.0 * 2.0 * 32.0 * cols * cols * (16.0 * 25.0));
}
BENCHMARK(BM_Conv2dBackward)->ArgsProduct({{32, 64}, {0, 1, 2, 4, 8}});

static void BM_DeconvForward(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto exec = make_exec(state.range(1));
  util::Rng rng(4);
  nn::ConvTranspose2d deconv(32, 16, 5, 2, 2, 1, rng);
  deconv.set_exec_context(exec.get());
  const auto x = nn::Tensor::randn({4, 32, size, size}, rng);
  for (auto _ : state) {
    auto y = deconv.forward(x);
    benchmark::DoNotOptimize(y.raw());
  }
  set_thread_counters(state);
  // Col = W^T X per sample: (out_ch*k*k) x (in_h*in_w) x in_ch.
  const double cols = static_cast<double>(size) * static_cast<double>(size);
  set_flops_counter(state, 4.0 * 2.0 * (16.0 * 25.0) * cols * 32.0);
}
BENCHMARK(BM_DeconvForward)->ArgsProduct({{16, 32}, {0, 1, 2, 4, 8}});

/// Conv-engine benchmark: runs one forward conv through a math::conv plan.
/// `algo` < 0 lets the cost model choose (the record's label carries what it
/// picked); >= 0 forces that ConvAlgo, so BENCH_micro_nn.json holds a
/// per-algorithm record for every shape and the model's choice can be
/// checked against the forced-im2col baseline on the same shape. Captures
/// below pick shapes where each non-GEMM algorithm should win: a 1x1
/// (direct == plain GEMM, no packing), a small-channel 5x5 (direct tap
/// loop) and a large-kernel blur (fft).
static void BM_ConvEngine(benchmark::State& state, std::size_t in_c, std::size_t hw,
                          std::size_t out_c, std::size_t k, std::size_t stride,
                          std::size_t pad, int algo) {
  const auto exec = make_exec(state.range(0));
  math::ConvKey key;
  key.in_c = in_c;
  key.in_h = hw;
  key.in_w = hw;
  key.out_c = out_c;
  key.kernel = k;
  key.stride = stride;
  key.pad = pad;
  key.threads = exec ? exec->threads() : 1;
  const auto plan = algo < 0 ? math::conv_plan(key)
                             : math::conv_plan(key, static_cast<math::ConvAlgo>(algo));
  state.SetLabel(math::conv_algo_name(plan->algo));

  util::Rng rng(7);
  const std::size_t batch = 4;
  std::vector<float> src(batch * in_c * hw * hw);
  std::vector<float> weights(out_c * in_c * k * k);
  std::vector<float> bias(out_c);
  for (auto& v : src) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : weights) v = static_cast<float>(rng.uniform(-1, 1));
  math::Epilogue epi;
  epi.bias = bias.data();
  epi.bias_per_row = true;
  epi.act = math::Activation::kLeakyRelu;

  std::vector<float> dst(batch * out_c * plan->out_h * plan->out_w);
  util::Workspace ws;
  // One warm call outside timing: first-touch of dst/scratch pages and any
  // FFT twiddle build must not land in the first measured config.
  math::conv2d_forward(*plan, batch, src.data(), weights.data(), nullptr, epi,
                       dst.data(), exec.get(), ws);
  for (auto _ : state) {
    math::conv2d_forward(*plan, batch, src.data(), weights.data(), nullptr, epi,
                         dst.data(), exec.get(), ws);
    benchmark::DoNotOptimize(dst.data());
  }
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(std::max<std::int64_t>(1, state.range(0))));
  // GEMM-equivalent multiply-adds, so gflops_per_s is comparable across
  // algorithms on the same shape (fft does different arithmetic; its
  // "effective" GF/s against this count is exactly the point).
  set_flops_counter(state, static_cast<double>(batch) * 2.0 *
                               static_cast<double>(out_c) *
                               static_cast<double>(plan->rows) *
                               static_cast<double>(plan->cols));
}
// 1x1 projection: direct is the column matrix IS the input, no packing.
BENCHMARK_CAPTURE(BM_ConvEngine, conv1x1_plan, 64, 32, 64, 1, 1, 0, -1)
    ->ArgsProduct({{0, 1, 2, 4, 8}});
BENCHMARK_CAPTURE(BM_ConvEngine, conv1x1_im2col, 64, 32, 64, 1, 1, 0, 0)
    ->ArgsProduct({{0, 1, 2, 4, 8}});
BENCHMARK_CAPTURE(BM_ConvEngine, conv1x1_direct, 64, 32, 64, 1, 1, 0, 1)
    ->ArgsProduct({{0, 1, 2, 4, 8}});
// Small-channel 5x5: the direct tap loop skips the 25-fold im2col blowup.
BENCHMARK_CAPTURE(BM_ConvEngine, smallch5x5_plan, 2, 64, 4, 5, 1, 2, -1)
    ->ArgsProduct({{0, 1, 2, 4, 8}});
BENCHMARK_CAPTURE(BM_ConvEngine, smallch5x5_im2col, 2, 64, 4, 5, 1, 2, 0)
    ->ArgsProduct({{0, 1, 2, 4, 8}});
BENCHMARK_CAPTURE(BM_ConvEngine, smallch5x5_direct, 2, 64, 4, 5, 1, 2, 1)
    ->ArgsProduct({{0, 1, 2, 4, 8}});
// Large-kernel single-channel blur: spectral convolution's home turf.
BENCHMARK_CAPTURE(BM_ConvEngine, largek63_plan, 1, 128, 1, 63, 1, 31, -1)
    ->ArgsProduct({{0, 1, 2, 4, 8}});
BENCHMARK_CAPTURE(BM_ConvEngine, largek63_im2col, 1, 128, 1, 63, 1, 31, 0)
    ->ArgsProduct({{0, 1, 2, 4, 8}});
BENCHMARK_CAPTURE(BM_ConvEngine, largek63_fft, 1, 128, 1, 63, 1, 31, 2)
    ->ArgsProduct({{0, 1, 2, 4, 8}});

static void BM_GeneratorInference(benchmark::State& state) {
  // The lite-scale generator used by the experiment harnesses.
  core::LithoGanConfig cfg = core::LithoGanConfig::tiny();
  cfg.image_size = 32;
  cfg.base_channels = 12;
  cfg.max_channels = 48;
  const auto exec = make_exec(state.range(0));
  util::Rng rng(5);
  auto gen = core::build_generator(cfg, rng);
  gen->set_training(false);
  gen->set_exec_context(exec.get());
  const auto x = nn::Tensor::randn({1, 3, 32, 32}, rng);
  for (auto _ : state) {
    auto y = gen->forward(x);
    benchmark::DoNotOptimize(y.raw());
  }
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(std::max<std::int64_t>(1, state.range(0))));
}
BENCHMARK(BM_GeneratorInference)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

static void BM_PaperScaleGeneratorLayer(benchmark::State& state) {
  // One paper-scale encoder layer (the 256x256 -> 128x128, 3 -> 64 conv):
  // documents what full-scale inference would cost on this machine.
  const auto exec = make_exec(state.range(0));
  util::Rng rng(6);
  nn::Conv2d conv(3, 64, 5, 2, 2, rng);
  conv.set_exec_context(exec.get());
  const auto x = nn::Tensor::randn({1, 3, 256, 256}, rng);
  for (auto _ : state) {
    auto y = conv.forward(x);
    benchmark::DoNotOptimize(y.raw());
  }
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(std::max<std::int64_t>(1, state.range(0))));
  const double cols = static_cast<double>(nn::conv_out_size(256, 5, 2, 2));
  set_flops_counter(state, 2.0 * 64.0 * cols * cols * (3.0 * 25.0));
}
BENCHMARK(BM_PaperScaleGeneratorLayer)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

namespace {

/// Console output as usual, plus a BenchRecord per run for the JSON dump.
/// The run name "BM_Op/shape.../threads" is split so `shape` holds the
/// middle operands and `threads` comes from the explicit counter.
class JsonCollector : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred || run.iterations == 0) continue;
      bench::BenchRecord rec;
      std::string name = run.benchmark_name();
      const std::size_t slash = name.find('/');
      rec.op = name.substr(0, slash);
      if (rec.op.rfind("BM_", 0) == 0) rec.op = rec.op.substr(3);
      if (slash != std::string::npos) {
        std::string operands = name.substr(slash + 1);
        // The trailing operand is the thread count, reported separately.
        const std::size_t last = operands.rfind('/');
        rec.shape = last == std::string::npos ? "" : operands.substr(0, last);
      }
      if (rec.shape.empty()) rec.shape = "-";
      const auto threads_it = run.counters.find("threads");
      rec.threads = threads_it == run.counters.end()
                        ? 1
                        : static_cast<std::size_t>(threads_it->second.value);
      const double sec_per_iter =
          run.real_accumulated_time / static_cast<double>(run.iterations);
      rec.ns_per_iter = sec_per_iter * 1e9;
      const auto flops_it = run.counters.find("flops");
      if (flops_it != run.counters.end() && sec_per_iter > 0.0) {
        rec.gflops_per_s = flops_it->second.value / sec_per_iter / 1e9;
      }
      records.push_back(std::move(rec));
    }
  }

  std::vector<bench::BenchRecord> records;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCollector reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const char* path = std::getenv("LITHOGAN_BENCH_JSON");
  bench::write_bench_json(path != nullptr ? path : "BENCH_micro_nn.json",
                          reporter.records);
  benchmark::Shutdown();
  return 0;
}
