// Engineering micro-benchmarks for the neural-network substrate
// (google-benchmark): GEMM, conv forward/backward, generator inference.
// These are not paper experiments; they document the throughput on which
// the Table 4 runtime results stand.
#include <benchmark/benchmark.h>

#include "core/config.hpp"
#include "core/networks.hpp"
#include "math/gemm.hpp"
#include "nn/conv.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"

using namespace lithogan;

static void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<float> a(n * n);
  std::vector<float> b(n * n);
  std::vector<float> c(n * n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    math::gemm(n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

static void BM_Conv2dForward(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  nn::Conv2d conv(16, 32, 5, 2, 2, rng);
  const auto x = nn::Tensor::randn({1, 16, size, size}, rng);
  for (auto _ : state) {
    auto y = conv.forward(x);
    benchmark::DoNotOptimize(y.raw());
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(32)->Arg(64);

static void BM_Conv2dBackward(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  nn::Conv2d conv(16, 32, 5, 2, 2, rng);
  const auto x = nn::Tensor::randn({1, 16, size, size}, rng);
  const auto y = conv.forward(x);
  const auto g = nn::Tensor::randn(y.shape(), rng);
  for (auto _ : state) {
    auto gx = conv.backward(g);
    benchmark::DoNotOptimize(gx.raw());
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(32)->Arg(64);

static void BM_DeconvForward(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  util::Rng rng(4);
  nn::ConvTranspose2d deconv(32, 16, 5, 2, 2, 1, rng);
  const auto x = nn::Tensor::randn({1, 32, size, size}, rng);
  for (auto _ : state) {
    auto y = deconv.forward(x);
    benchmark::DoNotOptimize(y.raw());
  }
}
BENCHMARK(BM_DeconvForward)->Arg(16)->Arg(32);

static void BM_GeneratorInference(benchmark::State& state) {
  // The lite-scale generator used by the experiment harnesses.
  core::LithoGanConfig cfg = core::LithoGanConfig::tiny();
  cfg.image_size = 32;
  cfg.base_channels = 12;
  cfg.max_channels = 48;
  util::Rng rng(5);
  auto gen = core::build_generator(cfg, rng);
  gen->set_training(false);
  const auto x = nn::Tensor::randn({1, 3, 32, 32}, rng);
  for (auto _ : state) {
    auto y = gen->forward(x);
    benchmark::DoNotOptimize(y.raw());
  }
}
BENCHMARK(BM_GeneratorInference);

static void BM_PaperScaleGeneratorLayer(benchmark::State& state) {
  // One paper-scale encoder layer (the 256x256 -> 128x128, 3 -> 64 conv):
  // documents what full-scale inference would cost on this machine.
  util::Rng rng(6);
  nn::Conv2d conv(3, 64, 5, 2, 2, rng);
  const auto x = nn::Tensor::randn({1, 3, 256, 256}, rng);
  for (auto _ : state) {
    auto y = conv.forward(x);
    benchmark::DoNotOptimize(y.raw());
  }
}
BENCHMARK(BM_PaperScaleGeneratorLayer);

BENCHMARK_MAIN();
