// Serving-latency bench for the batched inference engine.
//
// Compares the pre-plan serving path — an eval-mode module forward per clip
// (per-layer heap allocation, autodiff input caching, per-call weight
// repacking, separate bias/activation sweeps) — against InferencePlan with
// prepacked weight panels, a liveness-planned activation arena and fused
// GEMM epilogues, then sweeps the plan's batch size — at fp32 and at every
// reduced precision (f16, bf16, i8) — and the end-to-end
// LithoGan::predict_batch pipeline (generator plan + center-CNN plan +
// recentering).
//
// Gates (the last two affect the exit code):
//   * single-clip fp32 plan latency must be >= 2x faster than the
//     module-forward path, and the f16 plan faster than the fp32 plan at
//     batch 1 (printed OK/MISS, like the table benches' shape checks);
//   * steady-state infer() calls at a warm batch size must perform zero
//     arena allocations, for EVERY precision — activation quantization runs
//     in workspace scratch, never the heap (hard FAIL — deterministic);
//   * every reduced precision must pass the accuracy gate against the fp32
//     plan output (eval::compare_outputs vs eval::gate_tolerance).
//
// Output: BENCH_infer.json (override with LITHOGAN_BENCH_JSON), one record
// per row with ns_per_iter = per-clip nanoseconds and the row's weight
// dtype in "dtype".
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/config.hpp"
#include "core/lithogan.hpp"
#include "data/batch.hpp"
#include "data/sample.hpp"
#include "eval/precision_gate.hpp"
#include "image/ops.hpp"
#include "math/half.hpp"
#include "nn/infer.hpp"
#include "nn/sequential.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace lithogan;

namespace {

/// Best-of-`reps` seconds per iteration of `body`.
double best_of(std::size_t reps, std::size_t iters,
               const std::function<void()>& body) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < reps; ++r) {
    util::Timer t;
    for (std::size_t i = 0; i < iters; ++i) body();
    best = std::min(best, t.elapsed_seconds() / static_cast<double>(iters));
  }
  return best;
}

nn::Tensor random_masks(std::size_t batch, const core::LithoGanConfig& cfg,
                        util::Rng& rng) {
  nn::Tensor t({batch, cfg.mask_channels, cfg.image_size, cfg.image_size});
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

/// Synthetic contact-clip samples (square target + offset resist), enough
/// structure to drive the full predict_batch pipeline end to end.
std::vector<data::Sample> synthetic_samples(std::size_t count,
                                            const core::LithoGanConfig& cfg,
                                            util::Rng& rng) {
  const std::size_t size = cfg.image_size;
  const auto s2 = static_cast<double>(size) / 2.0;
  std::vector<data::Sample> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    data::Sample s;
    s.clip_id = "bench-" + std::to_string(i);
    s.resist_pixel_nm = 128.0 / static_cast<double>(size);
    const double half = static_cast<double>(size) / 8.0 + rng.uniform(-1.0, 1.0);
    s.mask_rgb = image::Image(3, size, size);
    image::fill_rect(s.mask_rgb, 1,
                     {{s2 - half, s2 - half}, {s2 + half, s2 + half}}, 1.0f);
    samples.push_back(std::move(s));
  }
  return samples;
}

/// Steady-state allocation delta: 10 warm infers at a warmed batch size.
std::size_t steady_state_allocs(nn::InferencePlan& plan, const nn::Tensor& masks) {
  (void)plan.infer(masks);
  const std::size_t warm = plan.arena_stats().allocations;
  for (int i = 0; i < 10; ++i) (void)plan.infer(masks);
  return plan.arena_stats().allocations - warm;
}

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kWarn);
  std::printf("inference-engine latency — module forward vs InferencePlan\n");
  std::printf("(untrained weights: identical arithmetic cost, no train time)\n\n");

  // Lite scale (64x64, base 16) — the resolution the reproduction actually
  // serves at; LITHOGAN_BENCH_INFER_CONFIG=tiny drops to unit-test scale.
  core::LithoGanConfig cfg = core::LithoGanConfig::lite();
  if (const char* env = std::getenv("LITHOGAN_BENCH_INFER_CONFIG")) {
    if (std::string(env) == "tiny") cfg = core::LithoGanConfig::tiny();
  }
  core::LithoGan model(cfg, core::Mode::kDualLearning);
  util::Rng rng(424242);

  const std::string shape = std::to_string(cfg.mask_channels) + "x" +
                            std::to_string(cfg.image_size) + "x" +
                            std::to_string(cfg.image_size);
  std::vector<bench::BenchRecord> records;

  // (a) Baseline: the pre-plan serving path — one eval-mode module forward
  // per clip through the training data structures.
  auto& gen = static_cast<nn::Sequential&>(model.cgan().generator());
  gen.set_training(false);
  const nn::Tensor mask1 = random_masks(1, cfg, rng);
  (void)gen.forward(mask1);  // warm allocator / code paths
  const double module_s = best_of(7, 20, [&] { (void)gen.forward(mask1); });
  records.push_back({"generator_forward_module", shape, 1, module_s * 1e9, 0.0});

  // (b) Compiled plans over the same generator, batch sweep x precision
  // sweep. Shared mask tensors: every precision times (and is accuracy-
  // gated on) identical inputs. Per-clip time divides the batch out.
  const std::vector<std::size_t> batches{1, 4, 16};
  std::vector<nn::Tensor> mask_sets;
  for (const std::size_t b : batches) mask_sets.push_back(random_masks(b, cfg, rng));
  const std::vector<std::size_t> sample_shape{cfg.mask_channels, cfg.image_size,
                                              cfg.image_size};

  std::printf("  %-26s %12s %12s %10s\n", "path", "us/clip", "clips/s", "vs module");
  std::printf("  %-26s %12.1f %12.0f %9s\n", "module forward (b1)", module_s * 1e6,
              1.0 / module_s, "1.00x");

  double f32_b1_s = 0.0, f16_b1_s = 0.0;
  bool zero_alloc = true;
  bool accuracy_ok = true;
  nn::Tensor ref_out;  // fp32 output on the batch-4 masks, accuracy reference
  std::vector<std::string> acc_lines;

  for (const math::Dtype dtype : {math::Dtype::kF32, math::Dtype::kF16,
                                  math::Dtype::kBF16, math::Dtype::kI8}) {
    nn::InferencePlan plan;
    // The fp32 plan pins its precision explicitly: it is the bit-exact
    // reference and must not follow a LITHOGAN_INFER_DTYPE override.
    plan.set_precision(dtype);
    plan.compile(gen, sample_shape);
    const std::string dt = math::dtype_name(dtype);
    // Keep the historical fp32 row names ("infer_plan_b1") diffable across
    // trajectories; reduced rows carry the dtype in the op name too, so
    // speedup_vs_1t never pairs rows of different precisions.
    const std::string prefix =
        dtype == math::Dtype::kF32 ? "infer_plan_b" : "infer_plan_" + dt + "_b";

    for (std::size_t bi = 0; bi < batches.size(); ++bi) {
      const std::size_t batch = batches[bi];
      const nn::Tensor& masks = mask_sets[bi];
      (void)plan.infer(masks);  // warm the arena at this batch size
      const double per_clip = best_of(7, 20, [&] { (void)plan.infer(masks); }) /
                              static_cast<double>(batch);
      if (batch == 1 && dtype == math::Dtype::kF32) f32_b1_s = per_clip;
      if (batch == 1 && dtype == math::Dtype::kF16) f16_b1_s = per_clip;
      const std::string row = prefix + std::to_string(batch);
      records.push_back({row, shape, 1, per_clip * 1e9, 0.0, dt});
      std::printf("  %-26s %12.1f %12.0f %9.2fx\n", row.c_str(), per_clip * 1e6,
                  1.0 / per_clip, module_s / per_clip);
    }

    // Zero-allocation gate per precision: int8's activation quantization and
    // the 16-bit panel inflation both run in capacity-retaining workspace
    // scratch, so they are held to the same standard as fp32.
    const std::size_t delta = steady_state_allocs(plan, mask_sets.back());
    if (delta != 0) {
      zero_alloc = false;
      std::printf("  %-26s steady-state allocated (%zu events)\n",
                  ("alloc_gate_" + dt).c_str(), delta);
    }

    // Accuracy gate vs the fp32 plan on the shared batch-4 masks.
    const nn::Tensor& out = plan.infer(mask_sets[1]);
    if (dtype == math::Dtype::kF32) {
      ref_out = out;  // copy: plan-owned storage is reused
    } else {
      const eval::GateResult r = eval::compare_outputs(ref_out, out);
      const eval::GateTolerance tol = eval::gate_tolerance(dtype);
      const bool pass = r.pass(tol);
      accuracy_ok = accuracy_ok && pass;
      char line[160];
      std::snprintf(line, sizeof(line),
                    "  %-5s iou=%.4f center=%.3f max_abs=%.2e weights=%zuK  %s",
                    dt.c_str(), r.mean_iou, r.max_center, r.max_abs,
                    plan.weight_bytes() / 1024, pass ? "OK" : "FAIL");
      acc_lines.push_back(line);
    }
  }

  // (c) End-to-end predict_batch: both plans + batching + recentering.
  const std::size_t n_clips = 16;
  const std::vector<data::Sample> samples = synthetic_samples(n_clips, cfg, rng);
  const std::span<const data::Sample> span(samples);
  (void)model.predict_batch(span);  // compiles plans + warms arenas
  const double e2e_per_clip =
      best_of(5, 4, [&] { (void)model.predict_batch(span); }) /
      static_cast<double>(n_clips);
  // predict_batch's internal plans are default-constructed, so their dtype
  // follows the LITHOGAN_INFER_DTYPE override — record what actually ran.
  math::Dtype e2e_dtype = math::Dtype::kF32;
  math::parse_dtype(std::getenv("LITHOGAN_INFER_DTYPE"), e2e_dtype);
  records.push_back({"predict_batch_b16", shape, 1, e2e_per_clip * 1e9, 0.0,
                     math::dtype_name(e2e_dtype)});
  std::printf("  %-26s %12.1f %12.0f %9s\n", "predict_batch (b16, e2e)",
              e2e_per_clip * 1e6, 1.0 / e2e_per_clip, "-");

  const double speedup = module_s / std::max(f32_b1_s, 1e-12);
  const double f16_gain = f32_b1_s / std::max(f16_b1_s, 1e-12);
  std::printf("\naccuracy vs fp32 plan (batch 4):\n");
  for (const std::string& l : acc_lines) std::printf("%s\n", l.c_str());
  std::printf("\nchecks:\n");
  std::printf("  plan >= 2x module forward (b1): %s (%.2fx)\n",
              speedup >= 2.0 ? "OK" : "MISS", speedup);
  std::printf("  f16 plan faster than f32 (b1):  %s (%.2fx)\n",
              f16_gain > 1.0 ? "OK" : "MISS", f16_gain);
  std::printf("  zero steady-state allocations:  %s\n", zero_alloc ? "OK" : "FAIL");
  std::printf("  reduced-precision accuracy:     %s\n", accuracy_ok ? "OK" : "FAIL");

  const char* json_path = std::getenv("LITHOGAN_BENCH_JSON");
  bench::write_bench_json(json_path != nullptr ? json_path : "BENCH_infer.json",
                          records);

  if (!zero_alloc) {
    std::printf("\nFAIL: steady-state infer() allocated\n");
    return 1;
  }
  if (!accuracy_ok) {
    std::printf("\nFAIL: reduced-precision accuracy gate\n");
    return 1;
  }
  return 0;
}
