// Serving-latency bench for the batched inference engine.
//
// Compares the pre-plan serving path — an eval-mode module forward per clip
// (per-layer heap allocation, autodiff input caching, per-call weight
// repacking, separate bias/activation sweeps) — against InferencePlan with
// prepacked weight panels, a liveness-planned activation arena and fused
// GEMM epilogues, then sweeps the plan's batch size and the end-to-end
// LithoGan::predict_batch pipeline (generator plan + center-CNN plan +
// recentering).
//
// Two gates are checked (the second affects the exit code):
//   * single-clip plan latency must be >= 2x faster than the module-forward
//     path (printed OK/MISS, like the table benches' shape checks);
//   * steady-state infer() calls at a warm batch size must perform zero
//     arena allocations (hard FAIL — this is deterministic, not timing).
//
// Output: BENCH_infer.json (override with LITHOGAN_BENCH_JSON), one record
// per row with ns_per_iter = per-clip nanoseconds.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/config.hpp"
#include "core/lithogan.hpp"
#include "data/batch.hpp"
#include "data/sample.hpp"
#include "image/ops.hpp"
#include "nn/infer.hpp"
#include "nn/sequential.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace lithogan;

namespace {

/// Best-of-`reps` seconds per iteration of `body`.
double best_of(std::size_t reps, std::size_t iters,
               const std::function<void()>& body) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < reps; ++r) {
    util::Timer t;
    for (std::size_t i = 0; i < iters; ++i) body();
    best = std::min(best, t.elapsed_seconds() / static_cast<double>(iters));
  }
  return best;
}

nn::Tensor random_masks(std::size_t batch, const core::LithoGanConfig& cfg,
                        util::Rng& rng) {
  nn::Tensor t({batch, cfg.mask_channels, cfg.image_size, cfg.image_size});
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

/// Synthetic contact-clip samples (square target + offset resist), enough
/// structure to drive the full predict_batch pipeline end to end.
std::vector<data::Sample> synthetic_samples(std::size_t count,
                                            const core::LithoGanConfig& cfg,
                                            util::Rng& rng) {
  const std::size_t size = cfg.image_size;
  const auto s2 = static_cast<double>(size) / 2.0;
  std::vector<data::Sample> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    data::Sample s;
    s.clip_id = "bench-" + std::to_string(i);
    s.resist_pixel_nm = 128.0 / static_cast<double>(size);
    const double half = static_cast<double>(size) / 8.0 + rng.uniform(-1.0, 1.0);
    s.mask_rgb = image::Image(3, size, size);
    image::fill_rect(s.mask_rgb, 1,
                     {{s2 - half, s2 - half}, {s2 + half, s2 + half}}, 1.0f);
    samples.push_back(std::move(s));
  }
  return samples;
}

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kWarn);
  std::printf("inference-engine latency — module forward vs InferencePlan\n");
  std::printf("(untrained weights: identical arithmetic cost, no train time)\n\n");

  // Lite scale (64x64, base 16) — the resolution the reproduction actually
  // serves at; LITHOGAN_BENCH_INFER_CONFIG=tiny drops to unit-test scale.
  core::LithoGanConfig cfg = core::LithoGanConfig::lite();
  if (const char* env = std::getenv("LITHOGAN_BENCH_INFER_CONFIG")) {
    if (std::string(env) == "tiny") cfg = core::LithoGanConfig::tiny();
  }
  core::LithoGan model(cfg, core::Mode::kDualLearning);
  util::Rng rng(424242);

  const std::string shape = std::to_string(cfg.mask_channels) + "x" +
                            std::to_string(cfg.image_size) + "x" +
                            std::to_string(cfg.image_size);
  std::vector<bench::BenchRecord> records;

  // (a) Baseline: the pre-plan serving path — one eval-mode module forward
  // per clip through the training data structures.
  nn::Module& gen = model.cgan().generator();
  gen.set_training(false);
  const nn::Tensor mask1 = random_masks(1, cfg, rng);
  (void)gen.forward(mask1);  // warm allocator / code paths
  const double module_s = best_of(7, 20, [&] { (void)gen.forward(mask1); });
  records.push_back({"generator_forward_module", shape, 1, module_s * 1e9, 0.0});

  // (b) The compiled plan over the same generator, batch sweep. Per-clip
  // time divides the batch out; clips/sec is its reciprocal.
  nn::InferencePlan plan;
  plan.compile(static_cast<nn::Sequential&>(gen), {cfg.mask_channels, cfg.image_size,
                                                   cfg.image_size});
  std::printf("  %-26s %12s %12s %10s\n", "path", "us/clip", "clips/s", "vs module");
  std::printf("  %-26s %12.1f %12.0f %9s\n", "module forward (b1)", module_s * 1e6,
              1.0 / module_s, "1.00x");

  double plan_b1_s = 0.0;
  for (const std::size_t batch : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    const nn::Tensor masks = random_masks(batch, cfg, rng);
    (void)plan.infer(masks);  // warm the arena at this batch size
    const double per_clip =
        best_of(7, 20, [&] { (void)plan.infer(masks); }) / static_cast<double>(batch);
    if (batch == 1) plan_b1_s = per_clip;
    const std::string row = "infer_plan_b" + std::to_string(batch);
    records.push_back({row, shape, 1, per_clip * 1e9, 0.0});
    std::printf("  %-26s %12.1f %12.0f %9.2fx\n", row.c_str(), per_clip * 1e6,
                1.0 / per_clip, module_s / per_clip);
  }

  // (c) End-to-end predict_batch: both plans + batching + recentering.
  const std::size_t n_clips = 16;
  const std::vector<data::Sample> samples = synthetic_samples(n_clips, cfg, rng);
  const std::span<const data::Sample> span(samples);
  (void)model.predict_batch(span);  // compiles plans + warms arenas
  const double e2e_per_clip =
      best_of(5, 4, [&] { (void)model.predict_batch(span); }) /
      static_cast<double>(n_clips);
  records.push_back({"predict_batch_b16", shape, 1, e2e_per_clip * 1e9, 0.0});
  std::printf("  %-26s %12.1f %12.0f %9s\n", "predict_batch (b16, e2e)",
              e2e_per_clip * 1e6, 1.0 / e2e_per_clip, "-");

  // Zero-allocation gate: steady-state infers at a warm batch size must not
  // grow the arena (deterministic — a regression here is a real leak of
  // per-call allocation back into the serving loop).
  const nn::Tensor masks16 = random_masks(16, cfg, rng);
  (void)plan.infer(masks16);
  const std::size_t warm_allocs = plan.arena_stats().allocations;
  for (int i = 0; i < 10; ++i) (void)plan.infer(masks16);
  const nn::InferencePlan::ArenaStats stats = plan.arena_stats();
  const bool zero_alloc = stats.allocations == warm_allocs;

  const double speedup = module_s / std::max(plan_b1_s, 1e-12);
  std::printf("\narena: %zu slots for %zu logical buffers, %zu floats, "
              "%zu allocation events (steady-state delta %zu)\n",
              stats.slots, stats.buffers, stats.arena_floats, stats.allocations,
              stats.allocations - warm_allocs);
  std::printf("\nchecks:\n");
  std::printf("  plan >= 2x module forward (b1): %s (%.2fx)\n",
              speedup >= 2.0 ? "OK" : "MISS", speedup);
  std::printf("  zero steady-state allocations:  %s\n", zero_alloc ? "OK" : "FAIL");

  const char* json_path = std::getenv("LITHOGAN_BENCH_JSON");
  bench::write_bench_json(json_path != nullptr ? json_path : "BENCH_infer.json",
                          records);

  if (!zero_alloc) {
    std::printf("\nFAIL: steady-state infer() allocated\n");
    return 1;
  }
  return 0;
}
