// Shared infrastructure for the table/figure reproduction harnesses.
//
// Every experiment binary is self-contained: it asks for a dataset and a
// trained model, and this layer builds them on first use and caches them
// under bench_data/ (datasets as .ds files, models as checkpoints, training
// sidecars for the loss-curve and progression figures). Re-running a bench
// is then instant, and the figure benches can run in any order.
//
// Scale: the paper trains 256x256 images on a TITAN Xp for ~2 h per model;
// this reproduction runs on one CPU core, so the default experiment scale
// is 32x32 with proportionally narrower networks (see DESIGN.md). Set
// LITHOGAN_BENCH_EPOCHS / LITHOGAN_BENCH_CLIPS to rescale.
#pragma once

#include <string>
#include <vector>

#include "core/lithogan.hpp"
#include "data/dataset.hpp"
#include "eval/report.hpp"
#include "litho/process.hpp"

namespace lithogan::bench {

/// Cache directory (created on demand), relative to the working directory.
std::string cache_dir();

/// Output directory for figure artifacts (PPM/PGM panels).
std::string output_dir();

/// Lite process used by every experiment: 128-pixel simulation grid and
/// moderate source sampling.
litho::ProcessConfig bench_process(const std::string& node);  // "N10" | "N7"

/// The shared experiment scale (32x32 images, reduced widths). Epoch count
/// honors LITHOGAN_BENCH_EPOCHS (default 40).
core::LithoGanConfig bench_config();

/// Number of clips per dataset; honors LITHOGAN_BENCH_CLIPS (default 120).
std::size_t bench_clip_count();

/// Deterministic dataset for a node, cached as bench_data/<node>.ds.
data::Dataset bench_dataset(const std::string& node);

/// Deterministic 75/25 split (paper Sec. 4); same for every bench.
data::Split bench_split(const data::Dataset& dataset);

/// Loss-curve sidecar written next to each cached model.
struct TrainingSidecar {
  std::vector<core::GanEpochLosses> losses;
  /// Epochs at which progression snapshots were taken (Figure 8).
  std::vector<std::size_t> snapshot_epochs;
};

/// Trains (or loads) a model for `mode` on `node`. On a fresh train this
/// writes the checkpoint, the loss sidecar, and per-epoch snapshot images
/// of two fixed test samples for the Figure 8 bench.
core::LithoGan& bench_model(core::Mode mode, const std::string& node);

/// Loads the sidecar for a cached model, training first if necessary.
TrainingSidecar bench_sidecar(core::Mode mode, const std::string& node);

/// Tag identifying a cached model, e.g. "lithogan-N10".
std::string model_tag(core::Mode mode, const std::string& node);

/// The two test-sample indices used for Figure 6/8 snapshot panels.
std::vector<std::size_t> snapshot_samples(const data::Dataset& dataset,
                                          const data::Split& split);

/// Evaluates a model over the test split (EDE + pixel metrics).
eval::MethodReport evaluate_model(core::LithoGan& model, const data::Dataset& dataset,
                                  const std::vector<std::size_t>& test,
                                  const std::string& method_name,
                                  std::vector<double>* ede_samples = nullptr);

/// Prints a standard harness banner explaining scale caveats.
void print_banner(const std::string& experiment, const std::string& paper_claim);

}  // namespace lithogan::bench
