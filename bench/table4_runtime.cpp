// Reproduces Table 4: runtime of (a) rigorous simulation, (b) the
// Ref.[12]-style flow (optical simulation + CNN threshold prediction +
// contour processing), and (c) CGAN/LithoGAN inference, over the test set.
//
// The paper reports  rigorous > 15 h (ratio ~1800x),  Ref.[12] 80 min
// optical + 8 s ML + 15 min contour (ratio ~190x),  GAN 30 s (1x).
// Absolute numbers here differ (different machine, lite scale); the claim
// under test is the ORDERING and the rough magnitude of the ratios.
#include <cstdio>
#include <cstdlib>

#include "baseline/flow.hpp"
#include "bench_json.hpp"
#include "common.hpp"
#include "data/batch.hpp"
#include "geometry/marching_squares.hpp"
#include "util/exec_context.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

using namespace lithogan;

int main() {
  util::set_log_level(util::LogLevel::kWarn);
  bench::print_banner(
      "Table 4 — runtime comparison",
      "rigorous ~1800x, Ref.[12] flow ~190x, CGAN/LithoGAN 1x (30 s/dataset)");

  const std::string node = "N10";
  const data::Dataset dataset = bench::bench_dataset(node);
  const data::Split split = bench::bench_split(dataset);
  auto& model = bench::bench_model(core::Mode::kDualLearning, node);

  // Re-synthesize the test clips' geometry for the simulation flows (the
  // dataset stores images; the simulators consume rectangles).
  data::BuildConfig bc;
  bc.clip_count = bench::bench_clip_count();
  bc.render.mask_size_px = bench::bench_config().image_size;
  bc.render.resist_size_px = bench::bench_config().image_size;

  // Rigorous configuration: dense source sampling + focus averaging, the
  // settings that make golden-quality signoff simulation slow.
  litho::ProcessConfig rigorous_process = bench::bench_process(node);
  rigorous_process.optical.source_rings = 4;
  rigorous_process.optical.source_points_per_ring = 16;
  rigorous_process.optical.focus_planes = 3;

  // Optical configuration used by the threshold flow. The flow's selling
  // point in the paper is near-rigorous accuracy, which requires an aerial
  // image with dense partial-coherence sampling — still ~6x cheaper than
  // the full rigorous stack (which also averages focus planes and uses a
  // denser source), mirroring the paper's Calibre-optical + ML split.
  litho::ProcessConfig fast_process = bench::bench_process(node);
  fast_process.optical.source_rings = 2;
  fast_process.optical.source_points_per_ring = 16;

  layout::ClipGenerator generator(fast_process, {}, util::Rng(424242));
  const std::size_t n_clips = std::min<std::size_t>(split.test.size(), 16);
  std::vector<layout::MaskClip> clips;
  layout::SrafInserter sraf(fast_process, {});
  layout::OpcEngine opc({});
  {
    litho::Simulator opc_sim(fast_process);
    opc_sim.calibrate_dose();
    for (std::size_t i = 0; i < n_clips; ++i) {
      layout::MaskClip clip = generator.generate();
      sraf.insert(clip);
      opc.run_model_based(clip, opc_sim);
      clips.push_back(std::move(clip));
    }
  }

  // (a) Rigorous simulation per clip.
  litho::Simulator rigorous(rigorous_process);
  rigorous.calibrate_dose();
  rigorous.reset_timings();
  util::Timer t_rig;
  for (const auto& clip : clips) rigorous.run(clip.all_openings());
  const double rigorous_s = t_rig.elapsed_seconds();

  // (b) Ref.[12]-style flow: optical sim + CNN thresholds + contouring.
  baseline::ThresholdFlow flow(bench::bench_config(), util::Rng(99));
  flow.train(dataset, split.train);
  litho::Simulator fast_sim(fast_process);
  fast_sim.calibrate_dose();

  double optical_s = 0.0;
  double ml_s = 0.0;
  double contour_s = 0.0;
  data::RenderConfig render = dataset.render;
  for (const auto& clip : clips) {
    util::Timer t_opt;
    const auto aerial = fast_sim.aerial_image(clip.all_openings());
    optical_s += t_opt.elapsed_seconds();

    data::Sample s;
    s.aerial = data::crop_field(aerial, clip.center(), render);
    util::Timer t_ml;
    const auto thresholds = flow.predict_thresholds(s);
    ml_s += t_ml.elapsed_seconds();

    util::Timer t_ct;
    (void)baseline::contour_from_thresholds(s.aerial, thresholds);
    contour_s += t_ct.elapsed_seconds();
  }
  const double ref12_s = optical_s + ml_s + contour_s;

  // (c) LithoGAN inference on the same number of samples, through the
  // batched plan path (prepacked weights, arena reuse) — the serving
  // configuration Table 4 is about.
  std::vector<data::Sample> gan_samples;
  gan_samples.reserve(n_clips);
  for (std::size_t i = 0; i < n_clips; ++i) {
    gan_samples.push_back(dataset.samples[split.test[i % split.test.size()]]);
  }
  util::Timer t_gan;
  (void)model.predict_batch(gan_samples);
  const double gan_s = t_gan.elapsed_seconds();

  std::printf("\nmeasured over %zu clips (per-clip seconds):\n", n_clips);
  std::printf("  %-28s %10.4f  (%6.1fx)\n", "rigorous simulation",
              rigorous_s / n_clips, rigorous_s / gan_s);
  std::printf("  %-28s %10.4f  (%6.1fx)\n", "Ref.[12] flow total", ref12_s / n_clips,
              ref12_s / gan_s);
  std::printf("    %-26s %10.4f\n", "- optical simulation", optical_s / n_clips);
  std::printf("    %-26s %10.4f\n", "- ML threshold prediction", ml_s / n_clips);
  std::printf("    %-26s %10.4f\n", "- contour processing", contour_s / n_clips);
  std::printf("  %-28s %10.4f  (%6.1fx)\n", "LithoGAN inference", gan_s / n_clips, 1.0);

  std::printf("\npaper Table 4: rigorous >15 h (~1800x) | Ref.[12] 80 m + 8 s + 15 m "
              "(~190x) | GAN 30 s (1x)\n");

  // Machine-readable mirror of the table: one record per flow (and per
  // sweep row below), ns_per_iter = per-clip nanoseconds.
  std::vector<bench::BenchRecord> records;
  const std::string grid_shape = "grid" + std::to_string(rigorous_process.grid.pixels);
  const double clips_d = static_cast<double>(n_clips);
  records.push_back({"rigorous_sim", grid_shape, 1, rigorous_s / clips_d * 1e9, 0.0});
  records.push_back({"ref12_flow", grid_shape, 1, ref12_s / clips_d * 1e9, 0.0});
  records.push_back({"ref12_optical", grid_shape, 1, optical_s / clips_d * 1e9, 0.0});
  records.push_back({"ref12_ml", grid_shape, 1, ml_s / clips_d * 1e9, 0.0});
  records.push_back({"ref12_contour", grid_shape, 1, contour_s / clips_d * 1e9, 0.0});
  records.push_back({"lithogan_inference", grid_shape, 1, gan_s / clips_d * 1e9, 0.0});

  // Thread-count sweep over the dominant cost, rigorous simulation, through
  // the clip-parallel batch API (the coarse outer level — one clip per
  // worker, inner kernels serial). Every row produces bit-identical fields
  // (tests/determinism_test.cpp pins this); only wall time moves.
  // Thresholds are copied from the calibrated serial simulator so no row
  // pays for recalibration.
  const std::size_t sweep_clips = std::min<std::size_t>(clips.size(), 8);
  std::vector<std::vector<geometry::Rect>> sweep_batch;
  for (std::size_t i = 0; i < sweep_clips; ++i) {
    sweep_batch.push_back(clips[i].all_openings());
  }
  std::printf("\nthread sweep — rigorous simulation, clip-parallel (%zu clips):\n",
              sweep_clips);
  std::printf("  %8s %12s %9s\n", "threads", "s/clip", "speedup");
  double sweep_base_s = 0.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
    util::ExecContext exec(threads);
    litho::ProcessConfig swept = rigorous_process;
    swept.resist.threshold = rigorous.process().resist.threshold;
    swept.exec = &exec;
    litho::Simulator sim(swept);
    util::Timer t_sweep;
    (void)sim.run_batch(sweep_batch);
    const double per_clip = t_sweep.elapsed_seconds() / static_cast<double>(sweep_clips);
    if (threads == 1) sweep_base_s = per_clip;
    std::printf("  %8zu %12.4f %8.2fx\n", threads, per_clip,
                sweep_base_s / std::max(per_clip, 1e-12));
    records.push_back({"rigorous_sim_sweep", grid_shape, threads, per_clip * 1e9, 0.0});
  }

  const char* json_path = std::getenv("LITHOGAN_BENCH_JSON");
  bench::write_bench_json(json_path != nullptr ? json_path : "BENCH_table4.json",
                          records);

  std::printf("\nshape checks:\n");
  std::printf("  rigorous > Ref.[12] flow:   %s (%.1fx vs %.1fx)\n",
              rigorous_s > ref12_s ? "OK" : "MISS", rigorous_s / gan_s, ref12_s / gan_s);
  std::printf("  Ref.[12] flow > GAN:        %s\n", ref12_s > gan_s ? "OK" : "MISS");
  std::printf("  optical dominates Ref.[12]: %s (%.0f%% of flow)\n",
              optical_s > ml_s + contour_s ? "OK" : "MISS", 100.0 * optical_s / ref12_s);
  return 0;
}
