// Full-chip streaming throughput: golden simulation vs learned inference.
//
// Generates a chip-scale contact layout (LITHOGAN_BENCH_CHIP_NM, default
// 4096 nm), streams it through chip::ChipPipeline on both paths and reports
// contacts/second, tile-ring residency and the ML-vs-golden divergence
// (printed-state agreement and CD delta over contacts both paths print).
//
// Gates (all affect the exit code):
//   * amortized precompute: the second golden and second learned runs must
//     add ZERO fft/conv plan-cache misses — every plan is built while the
//     first tiles warm up, then reused for the rest of the chip and for
//     every later run;
//   * bounded steady state: the entire second learned run must perform zero
//     heap allocations, measured with a counting global operator new (the
//     serve_bench pattern) — warm buffers, pooled polygons and the shared
//     PredictScratch absorb the whole chip;
//   * the tile ring must hold min(ring_depth, tiles) slots — streaming may
//     never materialize the chip.
//
// Output: BENCH_chip.json (override with LITHOGAN_BENCH_JSON): throughput
// records (contacts/s, dir:"higher") plus a "chip" block with the tiling
// geometry, per-path rates and gate verdicts. LITHOGAN_BENCH_CHIP_CONFIG=
// tiny drops to smoke scale (reduced source, 1024 nm tiles, tiny model).
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "chip/layout.hpp"
#include "chip/pipeline.hpp"
#include "core/config.hpp"
#include "core/lithogan.hpp"
#include "litho/simulator.hpp"
#include "math/half.hpp"
#include "util/exec_context.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

using namespace lithogan;

// ---------------------------------------------------------------------------
// Counting allocator: every global new is tallied while the window is open.
// ---------------------------------------------------------------------------

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::size_t> g_alloc_events{0};

void note_alloc() {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_events.fetch_add(1, std::memory_order_relaxed);
  }
}
}  // namespace

void* operator new(std::size_t n) {
  note_alloc();
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t align) {
  note_alloc();
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (n + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t align) {
  return ::operator new(n, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

std::size_t plan_misses() {
  obs::Registry& reg = obs::Registry::global();
  return static_cast<std::size_t>(reg.counter_value("fft.plan_cache.miss") +
                                  reg.counter_value("conv.plan_cache.miss"));
}

struct PathSummary {
  double seconds = 0.0;
  std::size_t contacts = 0;
  double contacts_per_s = 0.0;
};

struct ContactSummary {
  bool printed = false;
  double cd_width_nm = 0.0;
};

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kWarn);
  std::printf("full-chip streaming — halo-tiled golden vs learned paths\n\n");

  bool tiny = false;
  if (const char* env = std::getenv("LITHOGAN_BENCH_CHIP_CONFIG")) {
    tiny = std::string(env) == "tiny";
  }
  litho::ProcessConfig process = litho::ProcessConfig::n10();
  chip::ChipConfig chip_cfg;
  core::LithoGanConfig model_cfg = core::LithoGanConfig::lite();
  if (tiny) {
    process.optical.source_rings = 1;
    process.optical.source_points_per_ring = 8;
    chip_cfg.tile_extent_nm = 1024.0;
    chip_cfg.tile_pixels = 256;
    chip_cfg.halo_lobes = 1.0;
    chip_cfg.chip_nm = 1600.0;
    model_cfg = core::LithoGanConfig::tiny();
    model_cfg.image_size = 16;
    model_cfg.base_channels = 6;
    model_cfg.max_channels = 24;
  }
  if (const char* env = std::getenv("LITHOGAN_BENCH_CHIP_NM")) {
    chip_cfg.chip_nm = std::max(512.0, std::atof(env));
  }

  // Calibrate once at clip scale; every tile shares the dose.
  litho::Simulator calib(process);
  calib.calibrate_dose();
  const litho::ProcessConfig calibrated = calib.process();

  const chip::ChipLayout layout(calibrated, chip_cfg);
  util::ExecContext exec(0);
  chip::ChipPipeline pipe(calibrated, layout, &exec);
  const std::string shape = std::to_string(static_cast<int>(chip_cfg.chip_nm)) + "nm";
  std::printf("  chip %.0f nm, %zu contacts, %zux%zu tiles of %.0f nm "
              "(halo %.0f nm, core %.0f nm), ring %zu slots\n\n",
              chip_cfg.chip_nm, layout.contacts().size(), pipe.tiles_x(),
              pipe.tiles_y(), chip_cfg.tile_extent_nm, pipe.halo_nm(),
              pipe.core_nm(), pipe.stats().ring_slots);

  std::vector<bench::BenchRecord> records;

  // (a) Golden path: warm run builds per-worker simulators and every FFT
  // plan; the timed second run must add no plan-cache misses.
  std::map<std::uint32_t, ContactSummary> golden_results;
  const auto golden_sink = [&](std::size_t, std::span<const chip::ContactResult> r) {
    for (const chip::ContactResult& x : r) {
      golden_results[x.contact] = {x.printed, x.cd_width_nm};
    }
  };
  pipe.run_golden(golden_sink);
  const std::size_t golden_warm_misses = plan_misses();
  std::size_t golden_contacts = 0;
  const auto count_sink = [&](std::size_t, std::span<const chip::ContactResult> r) {
    golden_contacts += r.size();
  };
  util::Timer golden_timer;
  pipe.run_golden(count_sink);
  PathSummary golden;
  golden.seconds = golden_timer.elapsed_seconds();
  golden.contacts = golden_contacts;
  golden.contacts_per_s =
      static_cast<double>(golden.contacts) / std::max(golden.seconds, 1e-9);
  const bool golden_plans_flat = plan_misses() == golden_warm_misses;
  std::printf("  golden:  %7.0f contacts/s (%zu contacts in %.2f s, %zu threads)\n",
              golden.contacts_per_s, golden.contacts, golden.seconds,
              exec.threads());
  records.push_back({"chip_golden_contacts_per_s", shape, exec.threads(),
                     golden.contacts_per_s, 0.0, "f64", "higher"});
  records.push_back({"chip_golden_ns_per_contact", shape, exec.threads(),
                     golden.seconds * 1e9 /
                         static_cast<double>(std::max<std::size_t>(golden.contacts, 1)),
                     0.0, "f64", "lower"});

  // (b) Learned path: warm run compiles the inference plans and grows every
  // pooled buffer; the second run is measured AND counted — the whole chip
  // must stream with zero heap allocations.
  core::LithoGan model(model_cfg, core::Mode::kDualLearning);
  const std::string dtype = math::dtype_name(model.serving_precision());
  std::map<std::uint32_t, ContactSummary> learned_results;
  pipe.run_learned(model, [&](std::size_t, std::span<const chip::ContactResult> r) {
    for (const chip::ContactResult& x : r) {
      learned_results[x.contact] = {x.printed, x.cd_width_nm};
    }
  });
  const std::size_t learned_warm_misses = plan_misses();
  std::size_t learned_contacts = 0;
  std::size_t* learned_counter = &learned_contacts;
  g_alloc_events.store(0);
  g_count_allocs.store(true);
  util::Timer learned_timer;
  pipe.run_learned(model,
                   [learned_counter](std::size_t, std::span<const chip::ContactResult> r) {
                     *learned_counter += r.size();
                   });
  PathSummary learned;
  learned.seconds = learned_timer.elapsed_seconds();
  g_count_allocs.store(false);
  const std::size_t learned_steady_allocs = g_alloc_events.load();
  learned.contacts = learned_contacts;
  learned.contacts_per_s =
      static_cast<double>(learned.contacts) / std::max(learned.seconds, 1e-9);
  const bool learned_plans_flat = plan_misses() == learned_warm_misses;
  std::printf("  learned: %7.0f contacts/s (%zu contacts in %.2f s, dtype %s)\n",
              learned.contacts_per_s, learned.contacts, learned.seconds,
              dtype.c_str());
  records.push_back({"chip_learned_contacts_per_s", shape, 1,
                     learned.contacts_per_s, 0.0, dtype, "higher"});
  records.push_back({"chip_learned_ns_per_contact", shape, 1,
                     learned.seconds * 1e9 /
                         static_cast<double>(std::max<std::size_t>(learned.contacts, 1)),
                     0.0, dtype, "lower"});

  // (c) ML-vs-golden divergence: printed-state agreement over all contacts,
  // mean |CD delta| over the ones both paths print. Reported, not gated —
  // the bench model is untrained unless a checkpoint-driven harness wraps
  // this binary.
  std::size_t printed_agree = 0;
  std::size_t both_printed = 0;
  double cd_delta_sum = 0.0;
  for (const auto& [idx, g] : golden_results) {
    const auto it = learned_results.find(idx);
    if (it == learned_results.end()) continue;
    if (g.printed == it->second.printed) ++printed_agree;
    if (g.printed && it->second.printed) {
      ++both_printed;
      cd_delta_sum += std::abs(g.cd_width_nm - it->second.cd_width_nm);
    }
  }
  const double printed_match_frac =
      golden_results.empty()
          ? 0.0
          : static_cast<double>(printed_agree) /
                static_cast<double>(golden_results.size());
  const double mean_cd_delta_nm =
      both_printed == 0 ? 0.0
                        : cd_delta_sum / static_cast<double>(both_printed);
  std::printf("  divergence: printed agreement %.2f, mean |CD delta| %.2f nm "
              "(%zu contacts printed by both)\n",
              printed_match_frac, mean_cd_delta_nm, both_printed);

  const bool coverage_ok = golden.contacts == layout.contacts().size() &&
                           learned.contacts == layout.contacts().size();
  const bool ring_ok =
      pipe.stats().ring_slots == std::min(chip_cfg.ring_depth, pipe.tiles());
  const bool alloc_ok = learned_steady_allocs == 0;
  const bool plans_ok = golden_plans_flat && learned_plans_flat;
  std::printf("\nchecks:\n");
  std::printf("  every contact owned exactly once on both paths: %s (%zu/%zu)\n",
              coverage_ok ? "OK" : "FAIL", golden.contacts,
              layout.contacts().size());
  std::printf("  tile ring bounded at min(ring_depth, tiles):    %s (%zu slots, "
              "%.1f KiB)\n",
              ring_ok ? "OK" : "FAIL", pipe.stats().ring_slots,
              static_cast<double>(pipe.stats().ring_bytes) / 1024.0);
  std::printf("  zero allocations over the warm learned chip:    %s (%zu)\n",
              alloc_ok ? "OK" : "FAIL", learned_steady_allocs);
  std::printf("  plan-cache misses only during warmup:           %s\n",
              plans_ok ? "OK" : "FAIL");

  const bool pass = coverage_ok && ring_ok && alloc_ok && plans_ok;
  char chip_json[1024];
  std::snprintf(
      chip_json, sizeof(chip_json),
      "{\n    \"chip_nm\": %.0f, \"tile_nm\": %.0f, \"tile_px\": %zu, "
      "\"halo_nm\": %.0f, \"core_nm\": %.0f, \"tiles\": %zu, "
      "\"contacts\": %zu, \"ring_slots\": %zu, \"ring_bytes\": %zu,\n"
      "    \"golden\": {\"contacts_per_s\": %.1f, \"seconds\": %.3f, "
      "\"threads\": %zu},\n"
      "    \"learned\": {\"contacts_per_s\": %.1f, \"seconds\": %.3f, "
      "\"dtype\": \"%s\"},\n"
      "    \"divergence\": {\"printed_match_frac\": %.4f, "
      "\"mean_cd_delta_nm\": %.3f, \"both_printed\": %zu},\n"
      "    \"gates\": {\"coverage\": %s, \"ring_bounded\": %s, "
      "\"learned_steady_allocs\": %zu, \"plan_warmup_only\": %s, "
      "\"pass\": %s}\n  }",
      chip_cfg.chip_nm, chip_cfg.tile_extent_nm, chip_cfg.tile_pixels,
      pipe.halo_nm(), pipe.core_nm(), pipe.tiles(), layout.contacts().size(),
      pipe.stats().ring_slots, pipe.stats().ring_bytes, golden.contacts_per_s,
      golden.seconds, exec.threads(), learned.contacts_per_s, learned.seconds,
      dtype.c_str(), printed_match_frac, mean_cd_delta_nm, both_printed,
      coverage_ok ? "true" : "false", ring_ok ? "true" : "false",
      learned_steady_allocs, plans_ok ? "true" : "false",
      pass ? "true" : "false");

  const char* json_path = std::getenv("LITHOGAN_BENCH_JSON");
  bench::write_bench_json(json_path != nullptr ? json_path : "BENCH_chip.json",
                          records, "chip", chip_json);

  if (!alloc_ok) {
    std::printf("\nFAIL: learned tile loop allocated in steady state\n");
    return 1;
  }
  if (!plans_ok) {
    std::printf("\nFAIL: plan caches missed after warmup\n");
    return 1;
  }
  if (!coverage_ok || !ring_ok) {
    std::printf("\nFAIL: streaming invariant violated\n");
    return 1;
  }
  return 0;
}
