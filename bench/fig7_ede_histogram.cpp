// Reproduces Figure 7: the distribution of per-sample EDE for CGAN vs
// LithoGAN over the test set. The paper's claim: LithoGAN's histogram is
// shifted toward lower EDE.
#include <cstdio>

#include "common.hpp"
#include "math/histogram.hpp"
#include "math/statistics.hpp"
#include "util/logging.hpp"

using namespace lithogan;

int main() {
  util::set_log_level(util::LogLevel::kWarn);
  bench::print_banner("Figure 7 — EDE distribution, CGAN vs LithoGAN",
                      "LithoGAN achieves lower EDE values than CGAN");

  const std::string node = "N10";
  const data::Dataset dataset = bench::bench_dataset(node);
  const data::Split split = bench::bench_split(dataset);
  auto& cgan = bench::bench_model(core::Mode::kPlainCgan, node);
  auto& lithogan_model = bench::bench_model(core::Mode::kDualLearning, node);

  std::vector<double> ede_cgan;
  std::vector<double> ede_lg;
  bench::evaluate_model(cgan, dataset, split.test, "CGAN", &ede_cgan);
  bench::evaluate_model(lithogan_model, dataset, split.test, "LithoGAN", &ede_lg);

  double hi = 1.0;
  for (const double v : ede_cgan) hi = std::max(hi, v);
  for (const double v : ede_lg) hi = std::max(hi, v);
  hi = std::ceil(hi) + 1.0;

  math::Histogram h_cgan(0.0, hi, 8);
  math::Histogram h_lg(0.0, hi, 8);
  h_cgan.add_all(ede_cgan);
  h_lg.add_all(ede_lg);

  std::printf("\n%s\n", h_cgan.ascii("CGAN EDE (nm)").c_str());
  std::printf("%s\n", h_lg.ascii("LithoGAN EDE (nm)").c_str());

  const auto s_cgan = math::summarize(ede_cgan);
  const auto s_lg = math::summarize(ede_lg);
  std::printf("CGAN:     mean %.2f nm, median %.2f nm, p90 %.2f nm\n", s_cgan.mean,
              s_cgan.median, math::percentile(ede_cgan, 90.0));
  std::printf("LithoGAN: mean %.2f nm, median %.2f nm, p90 %.2f nm\n", s_lg.mean,
              s_lg.median, math::percentile(ede_lg, 90.0));
  std::printf("\nshape check (LithoGAN distribution shifted left): mean %s, median %s\n",
              s_lg.mean < s_cgan.mean ? "OK" : "MISS",
              s_lg.median <= s_cgan.median ? "OK" : "MISS");
  std::printf("paper: LithoGAN mean 1.08 nm vs CGAN 1.52 nm on N10 (0.5 nm/px scale)\n");
  return 0;
}
