// Reproduces Figure 9: generator and discriminator loss along training.
// The paper's claims: the generator loss decreases steadily while the
// discriminator loss stays low/stable, and the model converges well before
// the end of the schedule (paper: ~epoch 50 of 80).
#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "math/statistics.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

using namespace lithogan;

int main() {
  util::set_log_level(util::LogLevel::kWarn);
  bench::print_banner("Figure 9 — generator / discriminator loss curves",
                      "G loss decays (dominated by lambda*l1), D loss stays low; "
                      "convergence by ~5/8 of the schedule");

  const std::string node = "N10";
  const auto sidecar = bench::bench_sidecar(core::Mode::kDualLearning, node);
  const auto& losses = sidecar.losses;
  if (losses.empty()) {
    std::printf("no loss history recorded\n");
    return 1;
  }

  double g_max = 0.0;
  for (const auto& e : losses) g_max = std::max(g_max, e.generator);

  std::printf("\nepoch |    G loss |    D loss |     l1    | G bar\n");
  std::printf("------+-----------+-----------+-----------+--------------------------\n");
  for (const auto& e : losses) {
    const auto bar = static_cast<std::size_t>(e.generator / g_max * 25.0);
    std::printf("%5zu | %9.3f | %9.3f | %9.4f | %s\n", e.epoch, e.generator,
                e.discriminator, e.l1, std::string(bar, '#').c_str());
  }

  // Convergence check at ~5/8 of the schedule (the paper's epoch 50 of 80).
  const std::size_t knee = losses.size() * 5 / 8;
  std::vector<double> tail;
  for (std::size_t i = knee; i < losses.size(); ++i) tail.push_back(losses[i].generator);
  const double tail_spread = math::summarize(tail).max - math::summarize(tail).min;
  const double total_drop = losses.front().generator - losses.back().generator;

  std::printf("\nshape checks:\n");
  std::printf("  G loss decreases overall:        %s (%.2f -> %.2f)\n",
              total_drop > 0 ? "OK" : "MISS", losses.front().generator,
              losses.back().generator);
  std::printf("  converged after ~5/8 of schedule: %s (tail spread %.2f vs drop %.2f)\n",
              tail_spread < 0.35 * total_drop ? "OK" : "MISS", tail_spread, total_drop);
  const double d_late = losses.back().discriminator;
  std::printf("  D loss bounded (no collapse):     %s (final D %.3f)\n",
              (d_late > 1e-5 && d_late < 5.0) ? "OK" : "MISS", d_late);
  std::printf("\npaper: G loss falls from ~20 to ~5 over 80 epochs, D loss < 2 "
              "throughout (Fig. 9)\n");
  return 0;
}
