// Throughput/latency bench for the dynamic micro-batching serving layer.
//
// Drives serve::Server with open-loop Poisson traffic (seeded Rng, so the
// arrival process is reproducible) at several offered-QPS points and
// reports the classic serving curve: achieved throughput and p50/p95/p99
// latency per point, plus the achieved batch-size mix. Against it, the
// batch-1 serial baseline — a predict_batch(1) loop — pins what the same
// model does with no batching at all.
//
// Gates (all affect the exit code):
//   * at saturation (the highest offered load), dynamically-batched
//     throughput must be >= the batch-1 serial throughput — batching must
//     convert queueing into throughput, not just add latency;
//   * the scheduler dispatch loop must be allocation-free in steady state,
//     measured with a counting global operator new over a warm saturated
//     burst (submission, dispatch, inference, writeback — everything except
//     the waiter-side Response copy, which is deferred out of the window).
//     The burst runs with telemetry ARMED — tracing on, exporter running —
//     so per-request spans and flow correlation are proven alloc-free, not
//     just the bare dispatch path;
//   * telemetry overhead: the saturated point re-runs with the same
//     arrival seed with tracing + the windowed exporter armed, and armed
//     throughput must stay within 1% of the telemetry-disabled run
//     (best-of-two armed attempts, so one scheduler hiccup on a loaded CI
//     host does not fail the build). The disabled run is the number
//     recorded in the curve, so cross-PR comparisons via bench_compare
//     track the untelemetered baseline.
//
// Output: BENCH_serve.json (override with LITHOGAN_BENCH_JSON): standard
// records plus a "serve" block with the per-point curve, batch histogram
// and gate verdicts. LITHOGAN_BENCH_SERVE_CONFIG=tiny drops to unit-test
// scale; LITHOGAN_BENCH_SERVE_DURATION=<seconds> sets the per-point
// duration (default 1.5).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/config.hpp"
#include "core/lithogan.hpp"
#include "data/sample.hpp"
#include "image/ops.hpp"
#include "math/half.hpp"
#include "obs/exporter.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "util/traffic.hpp"

using namespace lithogan;

// ---------------------------------------------------------------------------
// Counting allocator: every global new is tallied while the window is open.
// ---------------------------------------------------------------------------

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::size_t> g_alloc_events{0};

void note_alloc() {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_events.fetch_add(1, std::memory_order_relaxed);
  }
}
}  // namespace

void* operator new(std::size_t n) {
  note_alloc();
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t align) {
  note_alloc();
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (n + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t align) {
  return ::operator new(n, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

std::vector<data::Sample> synthetic_samples(std::size_t count,
                                            const core::LithoGanConfig& cfg,
                                            util::Rng& rng) {
  const std::size_t size = cfg.image_size;
  const auto s2 = static_cast<double>(size) / 2.0;
  std::vector<data::Sample> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    data::Sample s;
    s.clip_id = "bench-" + std::to_string(i);
    s.resist_pixel_nm = 128.0 / static_cast<double>(size);
    const double half = static_cast<double>(size) / 8.0 + rng.uniform(-1.0, 1.0);
    s.mask_rgb = image::Image(3, size, size);
    image::fill_rect(s.mask_rgb, 1,
                     {{s2 - half, s2 - half}, {s2 + half, s2 + half}}, 1.0f);
    samples.push_back(std::move(s));
  }
  return samples;
}

using util::percentile;

struct PointResult {
  double qps_offered = 0.0;
  double qps_achieved = 0.0;
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  double mean_batch = 0.0;
};

/// One open-loop Poisson point: a producer thread draws exponential
/// inter-arrivals at `qps` and try_submits round-robin clips for
/// `duration_s`; a waiter thread claims every accepted ticket and records
/// its served latency and batch size.
PointResult run_point(serve::Server& server, const std::vector<data::Sample>& samples,
                      double qps, double duration_s, unsigned seed,
                      std::vector<std::uint64_t>& batch_hist) {
  PointResult out;
  out.qps_offered = qps;
  const serve::Stats before = server.stats();

  std::mutex mu;
  std::condition_variable cv;
  std::deque<serve::Ticket> inflight;
  bool producing = true;

  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(qps * duration_s * 2.0) + 16);
  double batch_sum = 0.0;

  std::thread waiter([&] {
    for (;;) {
      serve::Ticket ticket;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return !inflight.empty() || !producing; });
        if (inflight.empty()) return;
        ticket = inflight.front();
        inflight.pop_front();
      }
      const serve::Response r = server.wait(ticket);
      latencies.push_back(r.latency_us);
      batch_sum += static_cast<double>(r.batch);
      const std::size_t bucket = std::min<std::size_t>(r.batch, batch_hist.size() - 1);
      ++batch_hist[bucket];
    }
  });

  util::Rng rng(seed);
  util::Timer clock;
  const auto t0 = std::chrono::steady_clock::now();
  double next_arrival_s = 0.0;
  std::size_t clip = 0;
  while (clock.elapsed_seconds() < duration_s) {
    // Exponential inter-arrival: the open-loop Poisson process keeps
    // offering load regardless of how far behind the server is.
    next_arrival_s += util::poisson_gap_s(rng, qps);
    const auto deadline = t0 + std::chrono::duration<double>(next_arrival_s);
    std::this_thread::sleep_until(deadline);
    if (const auto ticket = server.try_submit(samples[clip])) {
      {
        const std::lock_guard<std::mutex> lock(mu);
        inflight.push_back(*ticket);
      }
      cv.notify_one();
    }
    clip = (clip + 1) % samples.size();
  }
  const double elapsed_s = clock.elapsed_seconds();
  {
    const std::lock_guard<std::mutex> lock(mu);
    producing = false;
  }
  cv.notify_all();
  waiter.join();

  const serve::Stats after = server.stats();
  out.completed = latencies.size();
  out.rejected = after.rejected - before.rejected;
  out.qps_achieved = static_cast<double>(out.completed) / elapsed_s;
  out.p50_us = percentile(latencies, 0.50);
  out.p95_us = percentile(latencies, 0.95);
  out.p99_us = percentile(latencies, 0.99);
  out.mean_batch = latencies.empty()
                       ? 0.0
                       : batch_sum / static_cast<double>(latencies.size());
  return out;
}

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kWarn);
  std::printf("serving layer — dynamic micro-batching over the InferencePlan\n\n");

  core::LithoGanConfig cfg = core::LithoGanConfig::lite();
  if (const char* env = std::getenv("LITHOGAN_BENCH_SERVE_CONFIG")) {
    if (std::string(env) == "tiny") cfg = core::LithoGanConfig::tiny();
  }
  double duration_s = 1.5;
  if (const char* env = std::getenv("LITHOGAN_BENCH_SERVE_DURATION")) {
    duration_s = std::max(0.1, std::atof(env));
  }

  core::LithoGan model(cfg, core::Mode::kDualLearning);
  util::Rng rng(20260808);
  const std::vector<data::Sample> samples = synthetic_samples(32, cfg, rng);
  const std::string shape = std::to_string(cfg.mask_channels) + "x" +
                            std::to_string(cfg.image_size) + "x" +
                            std::to_string(cfg.image_size);
  std::vector<bench::BenchRecord> records;
  const std::string dtype = math::dtype_name(model.serving_precision());

  // (a) Batch-1 serial baseline: the throughput ceiling with no batching.
  const std::span<const data::Sample> one(&samples[0], 1);
  (void)model.predict_batch(one);  // compile plans, warm arenas
  util::Timer serial_timer;
  std::size_t serial_iters = 0;
  while (serial_timer.elapsed_seconds() < std::min(duration_s, 1.0)) {
    (void)model.predict_batch(one);
    ++serial_iters;
  }
  const double serial_s = serial_timer.elapsed_seconds() /
                          static_cast<double>(std::max<std::size_t>(serial_iters, 1));
  const double serial_qps = 1.0 / serial_s;
  records.push_back({"serve_serial_b1", shape, 1, serial_s * 1e9, 0.0, dtype});
  std::printf("  serial batch-1 baseline: %.1f us/clip, %.0f clips/s\n\n",
              serial_s * 1e6, serial_qps);

  serve::Config sc;
  sc.max_batch = 16;
  sc.max_wait_us = 2000;
  sc.queue_capacity = 256;
  serve::Server server(model, sc);

  // (b) Zero-allocation gate on the dispatch loop, with telemetry ARMED:
  // tracing records every submit/dispatch/complete/infer span (flow
  // correlation included) and a windowed exporter thread is live. The
  // exporter's interval is long enough that it sleeps through the counted
  // window — its periodic snapshot legitimately allocates, but on its own
  // schedule, not per request. Warm every pool slot the burst will touch
  // (LIFO free list: a burst of N cycles the same N slots) with tracing
  // already on, so thread rings are laid out and every metric/static is
  // registered before counting starts; then count every global allocation
  // across a submit -> serve -> quiesce window with waits deferred until
  // after the window closes.
  obs::Registry::global().counter("trace.spans_dropped");  // pre-register
  obs::set_trace_enabled(true);
  obs::Exporter armed_exporter({/*path=*/"", /*interval_ms=*/10000.0, nullptr});
  armed_exporter.start();
  const std::size_t burst = sc.max_batch * 2;
  std::vector<serve::Ticket> burst_tickets;
  burst_tickets.reserve(burst);
  const auto run_burst = [&](bool deferred_claim) {
    burst_tickets.clear();
    for (std::size_t i = 0; i < burst; ++i) {
      burst_tickets.push_back(server.submit(samples[i % samples.size()]));
    }
    if (!deferred_claim) {
      for (const auto& t : burst_tickets) (void)server.wait(t);
    }
  };
  const auto quiesce = [&](std::uint64_t target_completed) {
    while (server.stats().completed < target_completed) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  };
  run_burst(false);  // warm: slot images, scratch, arena, static metrics
  run_burst(false);
  const std::uint64_t completed_before = server.stats().completed;
  g_alloc_events.store(0);
  g_count_allocs.store(true);
  run_burst(true);  // claims deferred: the window sees no Response copies
  quiesce(completed_before + burst);
  g_count_allocs.store(false);
  for (const auto& t : burst_tickets) (void)server.wait(t);
  armed_exporter.stop();
  obs::set_trace_enabled(false);
  const std::size_t dispatch_allocs = g_alloc_events.load();
  std::printf("  dispatch-loop allocations over a warm %zu-request burst "
              "(telemetry armed): %zu\n\n",
              burst, dispatch_allocs);

  // (c) The offered-QPS sweep: fractions of the serial ceiling up to clear
  // saturation. Achieved batch size should grow with offered load.
  const std::vector<double> load_factors{0.5, 1.0, 2.0, 4.0};
  std::vector<PointResult> points;
  std::vector<std::uint64_t> batch_hist(sc.max_batch + 1, 0);
  std::printf("  %-12s %12s %10s %10s %10s %10s %9s\n", "offered_qps",
              "achieved_qps", "p50_us", "p95_us", "p99_us", "rejected", "avg_b");
  for (std::size_t i = 0; i < load_factors.size(); ++i) {
    const double qps = std::max(1.0, serial_qps * load_factors[i]);
    const PointResult p = run_point(server, samples, qps, duration_s,
                                    777u + static_cast<unsigned>(i), batch_hist);
    std::printf("  %-12.0f %12.0f %10.0f %10.0f %10.0f %10llu %9.2f\n",
                p.qps_offered, p.qps_achieved, p.p50_us, p.p95_us, p.p99_us,
                static_cast<unsigned long long>(p.rejected), p.mean_batch);
    records.push_back({"serve_p99_load" + std::to_string(i), shape, 1,
                       p.p99_us * 1e3, 0.0, dtype});
    points.push_back(p);
  }

  // (d) Telemetry-overhead gate: re-run the saturated point with the same
  // arrival seed, tracing + exporter armed, and compare achieved
  // throughput against the telemetry-disabled run above. Best-of-two
  // armed attempts: the comparison is same-process/same-warmth, so the
  // only honest source of a >1% gap besides real overhead is a scheduler
  // hiccup, and one retry removes that without hiding a true regression.
  const PointResult& saturated = points.back();
  const unsigned saturated_seed =
      777u + static_cast<unsigned>(load_factors.size() - 1);
  std::vector<std::uint64_t> armed_hist(sc.max_batch + 1, 0);
  double armed_qps = 0.0;
  for (int attempt = 0; attempt < 2; ++attempt) {
    obs::set_trace_enabled(true);
    obs::Exporter armed_point_exporter({/*path=*/"", /*interval_ms=*/500.0, nullptr});
    armed_point_exporter.start();
    const PointResult armed = run_point(server, samples, saturated.qps_offered,
                                        duration_s, saturated_seed, armed_hist);
    armed_point_exporter.stop();
    obs::set_trace_enabled(false);
    armed_qps = std::max(armed_qps, armed.qps_achieved);
    if (armed_qps >= 0.99 * saturated.qps_achieved) break;
  }
  server.shutdown();
  const double telemetry_overhead =
      saturated.qps_achieved > 0.0 ? 1.0 - armed_qps / saturated.qps_achieved : 0.0;
  const bool telemetry_ok = armed_qps >= 0.99 * saturated.qps_achieved;

  const bool throughput_ok = saturated.qps_achieved >= serial_qps;
  const bool alloc_ok = dispatch_allocs == 0;
  std::printf("\nchecks:\n");
  std::printf("  batched >= serial throughput at saturation: %s (%.0f vs %.0f clips/s)\n",
              throughput_ok ? "OK" : "FAIL", saturated.qps_achieved, serial_qps);
  std::printf("  zero dispatch-loop allocations (telemetry armed): %s\n",
              alloc_ok ? "OK" : "FAIL");
  std::printf("  telemetry overhead at saturation <= 1%%:    %s (%.0f armed vs %.0f "
              "disabled clips/s, %+.2f%%)\n",
              telemetry_ok ? "OK" : "FAIL", armed_qps, saturated.qps_achieved,
              telemetry_overhead * 100.0);

  // The "serve" block: the machine-readable curve + gate verdicts.
  std::string serve_json = "{\n    \"batch\": " + std::to_string(sc.max_batch) +
                           ", \"wait_us\": " + std::to_string(sc.max_wait_us) +
                           ", \"queue_capacity\": " + std::to_string(sc.queue_capacity) +
                           ", \"dtype\": \"" + dtype + "\"" +
                           ",\n    \"serial_qps\": " + std::to_string(serial_qps) +
                           ",\n    \"points\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointResult& p = points[i];
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "%s\n      {\"qps_offered\": %.1f, \"qps_achieved\": %.1f, "
                  "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f, "
                  "\"completed\": %llu, \"rejected\": %llu, \"mean_batch\": %.2f}",
                  i == 0 ? "" : ",", p.qps_offered, p.qps_achieved, p.p50_us,
                  p.p95_us, p.p99_us, static_cast<unsigned long long>(p.completed),
                  static_cast<unsigned long long>(p.rejected), p.mean_batch);
    serve_json += buf;
  }
  serve_json += "\n    ],\n    \"batch_hist\": [";
  for (std::size_t b = 0; b < batch_hist.size(); ++b) {
    serve_json += (b == 0 ? "" : ", ") + std::to_string(batch_hist[b]);
  }
  serve_json += "],\n    \"gates\": {\"throughput_vs_serial\": ";
  serve_json += throughput_ok ? "true" : "false";
  serve_json += ", \"dispatch_allocs\": " + std::to_string(dispatch_allocs);
  serve_json += ", \"telemetry_ok\": ";
  serve_json += telemetry_ok ? "true" : "false";
  {
    char buf[64];
    std::snprintf(buf, sizeof(buf), ", \"telemetry_overhead\": %.4f",
                  telemetry_overhead);
    serve_json += buf;
  }
  serve_json += ", \"pass\": ";
  serve_json += (throughput_ok && alloc_ok && telemetry_ok) ? "true" : "false";
  serve_json += "}\n  }";

  const char* json_path = std::getenv("LITHOGAN_BENCH_JSON");
  bench::write_bench_json(json_path != nullptr ? json_path : "BENCH_serve.json",
                          records, "serve", serve_json);

  if (!alloc_ok) {
    std::printf("\nFAIL: scheduler dispatch loop allocated in steady state\n");
    return 1;
  }
  if (!throughput_ok) {
    std::printf("\nFAIL: batched throughput below serial baseline at saturation\n");
    return 1;
  }
  if (!telemetry_ok) {
    std::printf("\nFAIL: armed telemetry cost more than 1%% of saturated throughput\n");
    return 1;
  }
  return 0;
}
