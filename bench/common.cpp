#include "common.hpp"

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "data/batch.hpp"
#include "image/io.hpp"
#include "util/error.hpp"
#include "util/fileio.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace lithogan::bench {

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

constexpr std::uint64_t kDatasetSeedBase = 1000;
constexpr std::uint64_t kSplitSeed = 77;

std::size_t node_seed(const std::string& node) {
  return kDatasetSeedBase + (node == "N7" ? 7 : 10);
}

}  // namespace

std::string cache_dir() {
  static const std::string dir = [] {
    util::make_directories("bench_data");
    return std::string("bench_data");
  }();
  return dir;
}

std::string output_dir() {
  static const std::string dir = [] {
    util::make_directories("bench_output");
    return std::string("bench_output");
  }();
  return dir;
}

litho::ProcessConfig bench_process(const std::string& node) {
  litho::ProcessConfig p =
      node == "N7" ? litho::ProcessConfig::n7() : litho::ProcessConfig::n10();
  p.grid.pixels = 128;  // 8 nm pixels over the 1x1 um clip
  p.optical.source_rings = 1;
  p.optical.source_points_per_ring = 8;
  return p;
}

core::LithoGanConfig bench_config() {
  // 64x64 images (2 nm/px): the coarsest resolution at which printed
  // pattern-placement errors are super-pixel, so the dual-learning vs
  // plain-CGAN comparison is meaningful (see EXPERIMENTS.md).
  core::LithoGanConfig cfg = core::LithoGanConfig::tiny();
  cfg.image_size = 64;
  cfg.base_channels = 12;
  cfg.max_channels = 48;
  cfg.epochs = env_or("LITHOGAN_BENCH_EPOCHS", 25);
  // The center CNN is cheap relative to the GAN and its accuracy directly
  // bounds LithoGAN's EDE; give it a long schedule and a noise-free head
  // (see LithoGanConfig::center_dropout).
  cfg.center_epochs = 120;
  cfg.center_dropout = 0.0f;
  return cfg;
}

std::size_t bench_clip_count() { return env_or("LITHOGAN_BENCH_CLIPS", 120); }

data::Dataset bench_dataset(const std::string& node) {
  const std::string path =
      cache_dir() + "/" + node + "-" + std::to_string(bench_clip_count()) + ".ds";
  if (util::file_exists(path)) return data::load_dataset(path);

  util::log_info() << "building " << node << " dataset (" << bench_clip_count()
                   << " clips) -> " << path;
  data::BuildConfig bc;
  bc.clip_count = bench_clip_count();
  bc.render.mask_size_px = bench_config().image_size;
  bc.render.resist_size_px = bench_config().image_size;
  // Strongly varied neighborhoods: more asymmetry -> more pattern-placement
  // variation for the center CNN to learn.
  bc.generator.position_jitter_nm = 10.0;
  bc.generator.occupancy = 0.65;
  data::DatasetBuilder builder(bench_process(node), bc, util::Rng(node_seed(node)));
  data::Dataset dataset = builder.build();
  save_dataset(dataset, path);
  return dataset;
}

data::Split bench_split(const data::Dataset& dataset) {
  util::Rng rng(kSplitSeed);
  return data::split_dataset(dataset, 0.75, rng);
}

std::string model_tag(core::Mode mode, const std::string& node) {
  return (mode == core::Mode::kDualLearning ? std::string("lithogan-")
                                            : std::string("cgan-")) +
         node;
}

std::vector<std::size_t> snapshot_samples(const data::Dataset& dataset,
                                          const data::Split& split) {
  std::vector<std::size_t> picks;
  if (!split.test.empty()) picks.push_back(split.test.front());
  if (split.test.size() > 1) picks.push_back(split.test[split.test.size() / 2]);
  (void)dataset;
  return picks;
}

namespace {

std::vector<std::size_t> snapshot_epochs_for(std::size_t total) {
  // Paper Figure 8 snapshots at epochs {1,3,5,7,15,27,50,80}; rescale to
  // the configured training length.
  const double fractions[] = {1.0 / 80, 3.0 / 80, 5.0 / 80, 7.0 / 80,
                              15.0 / 80, 27.0 / 80, 50.0 / 80, 1.0};
  std::vector<std::size_t> epochs;
  for (const double f : fractions) {
    const auto e = std::max<std::size_t>(
        1, static_cast<std::size_t>(f * static_cast<double>(total) + 0.5));
    if (epochs.empty() || e > epochs.back()) epochs.push_back(e);
  }
  return epochs;
}

void write_sidecar(const std::string& prefix, const TrainingSidecar& sidecar) {
  std::ostringstream oss;
  oss << "# epoch generator discriminator l1\n";
  for (const auto& e : sidecar.losses) {
    oss << e.epoch << " " << e.generator << " " << e.discriminator << " " << e.l1
        << "\n";
  }
  oss << "# snapshots";
  for (const auto e : sidecar.snapshot_epochs) oss << " " << e;
  oss << "\n";
  util::write_file(prefix + ".losses.txt", oss.str());
}

TrainingSidecar read_sidecar(const std::string& prefix) {
  TrainingSidecar sidecar;
  std::istringstream in(util::read_file(prefix + ".losses.txt"));
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (util::starts_with(line, "# snapshots")) {
      std::istringstream ss(line.substr(11));
      std::size_t e = 0;
      while (ss >> e) sidecar.snapshot_epochs.push_back(e);
      continue;
    }
    if (line[0] == '#') continue;
    std::istringstream ss(line);
    core::GanEpochLosses l;
    ss >> l.epoch >> l.generator >> l.discriminator >> l.l1;
    sidecar.losses.push_back(l);
  }
  return sidecar;
}

/// Trains one model, writing checkpoint + sidecar + snapshot images.
void train_and_cache(core::LithoGan& model, const std::string& node,
                     const std::string& prefix) {
  const data::Dataset dataset = bench_dataset(node);
  const data::Split split = bench_split(dataset);
  const auto picks = snapshot_samples(dataset, split);
  const auto snap_epochs = snapshot_epochs_for(model.config().epochs);

  // Reference panels for the progression figure.
  for (std::size_t k = 0; k < picks.size(); ++k) {
    const auto& s = dataset.samples[picks[k]];
    image::write_ppm(prefix + ".snap.mask.s" + std::to_string(k) + ".ppm", s.mask_rgb);
    image::write_pgm(prefix + ".snap.golden.s" + std::to_string(k) + ".pgm", s.resist);
  }

  TrainingSidecar sidecar;
  sidecar.snapshot_epochs = snap_epochs;
  auto losses = model.train(
      dataset, split.train,
      [&](const core::GanEpochLosses& epoch, core::LithoGan& m) {
        const bool snap = std::find(snap_epochs.begin(), snap_epochs.end(),
                                    epoch.epoch) != snap_epochs.end();
        if (!snap) return;
        for (std::size_t k = 0; k < picks.size(); ++k) {
          // Raw generator output during training (pre-adjustment, as in the
          // paper's Figure 8).
          const auto mask = data::image_to_tensor(dataset.samples[picks[k]].mask_rgb);
          const auto img = data::tensor_to_resist_image(m.predict_shape(mask));
          image::write_pgm(prefix + ".snap.e" + std::to_string(epoch.epoch) + ".s" +
                               std::to_string(k) + ".pgm",
                           img);
        }
      });
  sidecar.losses = std::move(losses);
  model.save(prefix);
  write_sidecar(prefix, sidecar);
}

}  // namespace

core::LithoGan& bench_model(core::Mode mode, const std::string& node) {
  static std::map<std::string, std::unique_ptr<core::LithoGan>> cache;
  const std::string tag = model_tag(mode, node);
  auto it = cache.find(tag);
  if (it != cache.end()) return *it->second;

  auto model = std::make_unique<core::LithoGan>(bench_config(), mode);
  const std::string prefix = cache_dir() + "/" + tag;
  if (util::file_exists(prefix + ".gen.bin") &&
      util::file_exists(prefix + ".losses.txt")) {
    model->load(prefix);
  } else {
    util::log_info() << "training " << tag << " (" << bench_config().epochs
                     << " epochs)";
    train_and_cache(*model, node, prefix);
  }
  auto& ref = *model;
  cache[tag] = std::move(model);
  return ref;
}

TrainingSidecar bench_sidecar(core::Mode mode, const std::string& node) {
  const std::string prefix = cache_dir() + "/" + model_tag(mode, node);
  if (!util::file_exists(prefix + ".losses.txt")) {
    bench_model(mode, node);  // trains and writes the sidecar
  }
  return read_sidecar(prefix);
}

eval::MethodReport evaluate_model(core::LithoGan& model, const data::Dataset& dataset,
                                  const std::vector<std::size_t>& test,
                                  const std::string& method_name,
                                  std::vector<double>* ede_samples) {
  eval::MetricAccumulator acc(method_name, dataset.process_name,
                              dataset.samples.at(0).resist_pixel_nm);
  for (const std::size_t i : test) {
    acc.add(dataset.samples[i].resist, model.predict(dataset.samples[i]));
  }
  if (ede_samples != nullptr) *ede_samples = acc.ede_samples_nm();
  return acc.finalize();
}

void print_banner(const std::string& experiment, const std::string& paper_claim) {
  const auto cfg = bench_config();
  std::printf("=====================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("scale: lite reproduction (%zux%zu images, %.1f nm/px, 1 CPU core;\n",
              cfg.image_size, cfg.image_size,
              128.0 / static_cast<double>(cfg.image_size));
  std::printf("       the paper used 256x256 at 0.5 nm/px on a TITAN Xp). Shapes\n");
  std::printf("       and orderings are comparable; absolute values are\n");
  std::printf("       resolution-dependent. See EXPERIMENTS.md.\n");
  std::printf("=====================================================================\n");
}

}  // namespace lithogan::bench
