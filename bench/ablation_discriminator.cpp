// Ablation: the paper's global FC discriminator head (Table 1) vs the
// pix2pix PatchGAN head (a per-patch logit map). Another silent design
// departure of the paper from its pix2pix ancestry, probed under an equal
// reduced training budget.
#include <cstdio>

#include "common.hpp"
#include "util/logging.hpp"

using namespace lithogan;

int main() {
  util::set_log_level(util::LogLevel::kWarn);
  bench::print_banner("Ablation — global FC discriminator (paper) vs PatchGAN",
                      "design-choice probe; pix2pix uses a patch discriminator, "
                      "the paper a single FC logit");

  const std::string node = "N10";
  const data::Dataset dataset = bench::bench_dataset(node);
  const data::Split split = bench::bench_split(dataset);

  core::LithoGanConfig cfg = bench::bench_config();
  cfg.epochs = std::max<std::size_t>(6, cfg.epochs / 3);

  std::printf("\ntraining both arms for %zu epochs...\n", cfg.epochs);
  std::vector<eval::MethodReport> reports;
  for (const auto disc : {core::DiscriminatorArch::kGlobalFc, core::DiscriminatorArch::kPatch}) {
    const bool patch = disc == core::DiscriminatorArch::kPatch;
    core::LithoGan model(cfg, core::Mode::kPlainCgan,
                         core::GeneratorArch::kEncoderDecoder, disc);
    const auto curves = model.train(dataset, split.train);
    std::printf("  %-10s final D loss %.3f, final l1 %.4f\n",
                patch ? "PatchGAN" : "global FC", curves.back().discriminator,
                curves.back().l1);
    reports.push_back(bench::evaluate_model(model, dataset, split.test,
                                            patch ? "PatchGAN D" : "Global-FC D"));
  }

  std::printf("\n%s\n", eval::format_table3(reports).c_str());
  std::printf("EDE delta (FC - Patch): %+.2f nm\n",
              reports[0].ede_mean_nm - reports[1].ede_mean_nm);
  std::printf("reading: a patch discriminator criticizes local texture, usually "
              "sharpening edges; the global FC head judges whole-image realism, "
              "which also penalizes misplacement.\n");
  return 0;
}
