// Reproduces Table 3: EDE / pixel accuracy / class accuracy / mean IoU for
// the Ref.[12]-style threshold flow, plain CGAN, and LithoGAN on the N10
// and N7 datasets — plus the Sec. 4.1 center-CNN error and the Sec. 4.2
// CD-acceptance check (error within 10% of the contact half-pitch).
#include <cstdio>
#include <vector>

#include "baseline/flow.hpp"
#include "common.hpp"
#include "eval/report.hpp"
#include "util/logging.hpp"

using namespace lithogan;

namespace {

// Paper Table 3 reference values.
struct PaperRow {
  const char* dataset;
  const char* method;
  double ede, std_dev, pix, cls, iou;
};
constexpr PaperRow kPaper[] = {
    {"N10", "Ref.[12]", 0.67, 0.55, 0.98, 0.99, 0.98},
    {"N10", "CGAN", 1.52, 0.95, 0.96, 0.97, 0.94},
    {"N10", "LithoGAN", 1.08, 0.88, 0.97, 0.98, 0.96},
    {"N7", "Ref.[12]", 0.55, 0.53, 0.99, 0.99, 0.98},
    {"N7", "CGAN", 1.21, 0.77, 0.98, 0.98, 0.96},
    {"N7", "LithoGAN", 0.88, 0.67, 0.99, 0.99, 0.97},
};

eval::MethodReport evaluate_baseline(baseline::ThresholdFlow& flow,
                                     const data::Dataset& dataset,
                                     const std::vector<std::size_t>& test) {
  eval::MetricAccumulator acc("Ref.[12]-style", dataset.process_name,
                              dataset.samples.at(0).resist_pixel_nm);
  for (const std::size_t i : test) {
    acc.add(dataset.samples[i].resist, flow.predict(dataset.samples[i]));
  }
  return acc.finalize();
}

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kInfo);
  bench::print_banner(
      "Table 3 — accuracy comparison (Ref.[12] flow vs CGAN vs LithoGAN)",
      "LithoGAN beats CGAN on every metric; the threshold flow is slightly "
      "more accurate but needs optical simulation");

  std::vector<eval::MethodReport> reports;
  for (const std::string node : {"N10", "N7"}) {
    const data::Dataset dataset = bench::bench_dataset(node);
    const data::Split split = bench::bench_split(dataset);

    // The 4-scalar threshold regression saturates quickly and overfits on
    // long schedules; give it its own moderate budget.
    core::LithoGanConfig flow_cfg = bench::bench_config();
    flow_cfg.center_epochs = 60;
    baseline::ThresholdFlow flow(flow_cfg, util::Rng(99));
    flow.train(dataset, split.train);
    reports.push_back(evaluate_baseline(flow, dataset, split.test));

    auto& cgan = bench::bench_model(core::Mode::kPlainCgan, node);
    reports.push_back(bench::evaluate_model(cgan, dataset, split.test, "CGAN"));

    auto& lithogan_model = bench::bench_model(core::Mode::kDualLearning, node);
    reports.push_back(
        bench::evaluate_model(lithogan_model, dataset, split.test, "LithoGAN"));

    // Sec. 4.1: center-CNN prediction error (paper: 0.43 nm N10, 0.37 nm N7).
    const double px_err = lithogan_model.center().evaluate_pixels(dataset, split.test);
    const double nm_err = px_err * dataset.samples[0].resist_pixel_nm;
    std::printf("\n[%s] center-CNN error: %.2f px = %.2f nm "
                "(paper: %.2f nm at 0.5 nm/px)\n",
                node.c_str(), px_err, nm_err, node == "N10" ? 0.43 : 0.37);

    // Sec. 4.2: acceptance — CD error within 10%% of the contact half pitch.
    const double half_pitch = bench::bench_process(node).min_pitch_nm / 2.0;
    const double budget = 0.1 * half_pitch;
    const double lithogan_ede = reports.back().ede_mean_nm;
    std::printf("[%s] acceptance: LithoGAN mean EDE %.2f nm vs 10%% of half-pitch "
                "%.2f nm -> %s\n",
                node.c_str(), lithogan_ede, budget,
                lithogan_ede <= budget ? "PASS" : "FAIL");
  }

  std::printf("\n--- measured (this reproduction) ---\n%s\n",
              eval::format_table3(reports).c_str());

  std::printf("--- paper Table 3 (256x256 images, 0.5 nm/px) ---\n");
  std::printf("%-8s %-12s %8s %8s %8s %8s %8s\n", "Dataset", "Method", "EDE", "Std",
              "PixAcc", "ClsAcc", "IoU");
  for (const auto& r : kPaper) {
    std::printf("%-8s %-12s %8.2f %8.2f %8.2f %8.2f %8.2f\n", r.dataset, r.method,
                r.ede, r.std_dev, r.pix, r.cls, r.iou);
  }

  std::printf("\nshape checks (orderings the paper claims):\n");
  for (int base = 0; base < 2; ++base) {
    const auto& ref = reports[base * 3 + 0];
    const auto& cgan = reports[base * 3 + 1];
    const auto& lg = reports[base * 3 + 2];
    std::printf("  [%s] EDE: LithoGAN (%.2f) < CGAN (%.2f): %s | Ref12 (%.2f) best: %s\n",
                ref.dataset.c_str(), lg.ede_mean_nm, cgan.ede_mean_nm,
                lg.ede_mean_nm < cgan.ede_mean_nm ? "OK" : "MISS", ref.ede_mean_nm,
                ref.ede_mean_nm <= lg.ede_mean_nm ? "OK" : "MISS");
    std::printf("  [%s] IoU: LithoGAN (%.3f) > CGAN (%.3f): %s\n", ref.dataset.c_str(),
                lg.mean_iou, cgan.mean_iou, lg.mean_iou > cgan.mean_iou ? "OK" : "MISS");
  }
  return 0;
}
