// Ablation: the conventional compact model the introduction argues against.
//
// "Although conventional variable threshold resist (VTR) models are highly
// efficient, they fail to keep up their accuracy at advanced technology
// nodes" (Sec. 1). This harness measures a constant-threshold compact flow
// (fast optics + calibrated fixed threshold, no learning) against the
// golden simulator on fresh clips, next to the trained LithoGAN — showing
// both why ML models exist and what the compact model's speed buys.
#include <cstdio>

#include "baseline/compact_vtr.hpp"
#include "common.hpp"
#include "data/render.hpp"
#include "geometry/marching_squares.hpp"
#include "layout/generator.hpp"
#include "layout/opc.hpp"
#include "layout/sraf.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

using namespace lithogan;

int main() {
  util::set_log_level(util::LogLevel::kWarn);
  bench::print_banner(
      "Ablation — conventional compact model (constant threshold, no ML)",
      "compact VTR models are fast but lose accuracy at advanced nodes (Sec. 1)");

  const std::string node = "N10";
  const litho::ProcessConfig process = bench::bench_process(node);
  const data::Dataset dataset = bench::bench_dataset(node);
  auto& model = bench::bench_model(core::Mode::kDualLearning, node);
  data::RenderConfig render = dataset.render;

  // Fresh clips with golden labels.
  const std::size_t n_clips = 24;
  litho::Simulator golden_sim(process);
  golden_sim.calibrate_dose();
  layout::ClipGenerator generator(process, {}, util::Rng(606060));
  layout::SrafInserter sraf(process, {});
  layout::OpcEngine opc({});

  baseline::CompactVtrFlow compact(process, render);

  eval::MetricAccumulator acc_compact("Compact CTR", node,
                                      dataset.samples[0].resist_pixel_nm);
  eval::MetricAccumulator acc_gan("LithoGAN", node,
                                  dataset.samples[0].resist_pixel_nm);
  double golden_s = 0.0;
  double compact_s = 0.0;
  double gan_s = 0.0;
  std::size_t used = 0;
  for (std::size_t k = 0; k < n_clips; ++k) {
    layout::MaskClip clip = generator.generate();
    sraf.insert(clip);
    opc.run_model_based(clip, golden_sim);

    util::Timer tg;
    const auto result = golden_sim.run(clip.all_openings());
    golden_s += tg.elapsed_seconds();
    const auto contour = geometry::contour_at(result.contours, clip.center());
    const auto golden = data::render_golden(contour, clip.center(), render);
    if (!golden.printed) continue;
    ++used;

    util::Timer tc;
    const auto compact_pred = compact.predict(clip);
    compact_s += tc.elapsed_seconds();
    acc_compact.add(golden.resist, compact_pred);

    data::Sample s;
    s.mask_rgb = data::render_mask(clip, render);
    util::Timer tn;
    const auto gan_pred = model.predict(s);
    gan_s += tn.elapsed_seconds();
    acc_gan.add(golden.resist, gan_pred);
  }

  const auto rep_compact = acc_compact.finalize();
  const auto rep_gan = acc_gan.finalize();
  std::printf("\n%zu clips evaluated against golden (full-VTR, dense source):\n",
              used);
  std::printf("%s\n", eval::format_table3({rep_compact, rep_gan}).c_str());
  std::printf("per-clip seconds: golden %.3f | compact %.3f | LithoGAN %.4f\n",
              golden_s / used, compact_s / used, gan_s / used);
  std::printf("\nshape checks:\n");
  std::printf("  compact model less accurate than golden-trained LithoGAN: %s "
              "(EDE %.2f vs %.2f nm)\n",
              rep_compact.ede_mean_nm > rep_gan.ede_mean_nm ? "OK" : "MISS",
              rep_compact.ede_mean_nm, rep_gan.ede_mean_nm);
  std::printf("  compact model faster than golden simulation: %s (%.1fx)\n",
              compact_s < golden_s ? "OK" : "MISS", golden_s / compact_s);
  std::printf("  LithoGAN faster than the compact model: %s (%.1fx)\n",
              gan_s < compact_s ? "OK" : "MISS", compact_s / gan_s);
  return 0;
}
