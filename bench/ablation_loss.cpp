// Ablation: the reconstruction term of Eq. 2 — l1 (the paper's choice,
// argued to blur less, after Isola et al.) vs l2, and the weight lambda
// (paper: 100) vs a weak lambda. All arms share one reduced schedule.
#include <cstdio>

#include "common.hpp"
#include "util/logging.hpp"

using namespace lithogan;

int main() {
  util::set_log_level(util::LogLevel::kWarn);
  bench::print_banner("Ablation — reconstruction loss (l1 vs l2) and lambda",
                      "the paper uses l1 with lambda = 100 (Sec. 3.2 / Sec. 4)");

  const std::string node = "N10";
  const data::Dataset dataset = bench::bench_dataset(node);
  const data::Split split = bench::bench_split(dataset);

  core::LithoGanConfig base = bench::bench_config();
  base.epochs = std::max<std::size_t>(6, base.epochs / 3);

  struct Arm {
    const char* name;
    bool use_l2;
    float lambda;
  };
  const Arm arms[] = {
      {"l1, lambda=100", false, 100.0f},
      {"l2, lambda=100", true, 100.0f},
      {"l1, lambda=1", false, 1.0f},
  };

  std::printf("\ntraining %zu arms for %zu epochs each...\n", std::size(arms),
              base.epochs);
  std::vector<eval::MethodReport> reports;
  for (const Arm& arm : arms) {
    core::LithoGanConfig cfg = base;
    cfg.use_l2_reconstruction = arm.use_l2;
    cfg.lambda_l1 = arm.lambda;
    core::LithoGan model(cfg, core::Mode::kPlainCgan);
    model.train(dataset, split.train);
    reports.push_back(bench::evaluate_model(model, dataset, split.test, arm.name));
  }

  std::printf("\n%s\n", eval::format_table3(reports).c_str());
  std::printf("shape checks:\n");
  std::printf("  strong reconstruction term matters (l1@100 beats l1@1 on IoU): %s "
              "(%.3f vs %.3f)\n",
              reports[0].mean_iou > reports[2].mean_iou ? "OK" : "MISS",
              reports[0].mean_iou, reports[2].mean_iou);
  std::printf("  l1 vs l2 at lambda=100: EDE %.2f vs %.2f nm (paper argues l1 "
              "blurs less)\n",
              reports[0].ede_mean_nm, reports[1].ede_mean_nm);
  return 0;
}
