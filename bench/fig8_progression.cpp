// Reproduces Figure 8: generated resist patterns for fixed test samples at
// checkpoints along training (paper: epochs 1,3,5,7,15,27,50,80, rescaled
// to the configured schedule). Snapshot images are written during training
// by the shared cache layer; this bench assembles them into montages and
// quantifies the progression (distance to golden must shrink).
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "image/io.hpp"
#include "image/ops.hpp"
#include "util/fileio.hpp"
#include "util/logging.hpp"

using namespace lithogan;

int main() {
  util::set_log_level(util::LogLevel::kWarn);
  bench::print_banner(
      "Figure 8 — prediction quality along training",
      "generated patterns become progressively more real and closer to golden");

  const std::string node = "N10";
  const auto sidecar = bench::bench_sidecar(core::Mode::kDualLearning, node);
  const std::string prefix =
      bench::cache_dir() + "/" + bench::model_tag(core::Mode::kDualLearning, node);

  for (std::size_t sample = 0; sample < 2; ++sample) {
    const std::string golden_path =
        prefix + ".snap.golden.s" + std::to_string(sample) + ".pgm";
    if (!util::file_exists(golden_path)) {
      std::printf("sample %zu: no snapshots (model restored from an old cache); "
                  "delete bench_data/ and re-run to regenerate\n",
                  sample);
      continue;
    }
    // Golden is stored uncentered; training snapshots are the CGAN-shape
    // output (centered), so compare against the centered golden.
    const image::Image golden_raw = image::read_pgm(golden_path);
    const image::Image golden = data::recenter_to(
        golden_raw, {static_cast<double>(golden_raw.width()) / 2.0,
                     static_cast<double>(golden_raw.height()) / 2.0});

    std::printf("\nsample %zu: epoch -> mean |prediction - golden| (in [0,1] units)\n",
                sample);
    std::vector<image::Image> panels;
    std::vector<double> mads;
    for (const std::size_t epoch : sidecar.snapshot_epochs) {
      const std::string path = prefix + ".snap.e" + std::to_string(epoch) + ".s" +
                               std::to_string(sample) + ".pgm";
      if (!util::file_exists(path)) continue;
      const image::Image snap = image::read_pgm(path);
      const double mad = image::mean_absolute_difference(snap, golden);
      mads.push_back(mad);
      std::printf("  epoch %3zu: %.4f\n", epoch, mad);

      // Grayscale snapshot -> RGB panel for the montage.
      image::Image rgb(3, snap.height(), snap.width());
      for (std::size_t c = 0; c < 3; ++c) {
        auto dst = rgb.channel(c);
        const auto src = snap.channel(0);
        for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i];
      }
      panels.push_back(std::move(rgb));
    }
    if (panels.empty()) continue;

    const std::string out =
        bench::output_dir() + "/fig8_progression_s" + std::to_string(sample) + ".ppm";
    image::write_ppm(out, image::montage(panels));
    std::printf("  montage (left = epoch %zu ... right = epoch %zu): %s\n",
                sidecar.snapshot_epochs.front(), sidecar.snapshot_epochs.back(),
                out.c_str());

    if (mads.size() >= 2) {
      std::printf("  shape check (late epochs closer to golden than epoch %zu): %s "
                  "(%.4f -> %.4f)\n",
                  sidecar.snapshot_epochs.front(),
                  mads.back() < mads.front() ? "OK" : "MISS", mads.front(), mads.back());
    }
  }
  return 0;
}
