// Reproduces Figure 6: side-by-side panels of (a) the mask-pattern input,
// (b) the plain-CGAN output and (c) the LithoGAN output, with the golden
// contour overlaid, for samples covering the three contact-array types.
// Panels are written to bench_output/fig6_*.ppm; the console prints the
// per-sample center offsets that the figure visualizes (CGAN centers drift,
// LithoGAN centers track the golden ones).
#include <cstdio>

#include "common.hpp"
#include "data/render.hpp"
#include "eval/metrics.hpp"
#include "image/io.hpp"
#include "image/ops.hpp"
#include "util/logging.hpp"

using namespace lithogan;

namespace {

/// Prediction panel in the paper's style: prediction filled green with a
/// red outline, golden contour outlined in black, white background.
image::Image prediction_panel(const image::Image& prediction, const image::Image& golden) {
  const std::size_t h = prediction.height();
  const std::size_t w = prediction.width();
  image::Image panel(3, h, w, 1.0f);
  const auto pred_mask = prediction.to_mask(0);
  const auto gold_mask = golden.to_mask(0);

  const auto is_edge = [&](const std::vector<std::uint8_t>& mask, std::size_t x,
                           std::size_t y) {
    if (!mask[y * w + x]) return false;
    if (x == 0 || y == 0 || x + 1 == w || y + 1 == h) return true;
    return !mask[y * w + x - 1] || !mask[y * w + x + 1] || !mask[(y - 1) * w + x] ||
           !mask[(y + 1) * w + x];
  };

  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      if (pred_mask[y * w + x]) {
        panel.at(0, y, x) = 0.2f;  // green fill
        panel.at(1, y, x) = 0.8f;
        panel.at(2, y, x) = 0.2f;
      }
      if (is_edge(pred_mask, x, y)) {
        panel.at(0, y, x) = 1.0f;  // red outline
        panel.at(1, y, x) = 0.0f;
        panel.at(2, y, x) = 0.0f;
      }
      if (is_edge(gold_mask, x, y)) {
        panel.at(0, y, x) = 0.0f;  // black golden contour
        panel.at(1, y, x) = 0.0f;
        panel.at(2, y, x) = 0.0f;
      }
    }
  }
  return panel;
}

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kWarn);
  bench::print_banner(
      "Figure 6 — mask input / CGAN output / LithoGAN output panels",
      "CGAN reproduces the shape but misplaces the center; LithoGAN nails both");

  const std::string node = "N10";
  const data::Dataset dataset = bench::bench_dataset(node);
  const data::Split split = bench::bench_split(dataset);
  auto& cgan = bench::bench_model(core::Mode::kPlainCgan, node);
  auto& lithogan_model = bench::bench_model(core::Mode::kDualLearning, node);

  // Pick one test sample of each array type (plus one extra), as in the
  // paper's four-row figure.
  std::vector<std::size_t> picks;
  bool have[3] = {false, false, false};
  for (const std::size_t i : split.test) {
    const int t = static_cast<int>(dataset.samples[i].array_type);
    if (!have[t]) {
      have[t] = true;
      picks.push_back(i);
    }
  }
  if (!split.test.empty()) picks.push_back(split.test.back());

  std::printf("\n%-20s %-9s %12s %12s %12s\n", "sample", "type", "golden ctr",
              "CGAN err", "LithoGAN err");
  double cgan_total = 0.0;
  double lg_total = 0.0;
  for (std::size_t k = 0; k < picks.size(); ++k) {
    const data::Sample& s = dataset.samples[picks[k]];

    const image::Image cgan_out = cgan.predict(s);
    const image::Image lg_out = lithogan_model.predict(s);

    const auto panel_mask = s.mask_rgb;
    const auto panel_cgan = prediction_panel(cgan_out, s.resist);
    const auto panel_lg = prediction_panel(lg_out, s.resist);
    const auto row = image::montage({panel_mask, panel_cgan, panel_lg});
    const std::string path =
        bench::output_dir() + "/fig6_" + std::to_string(k) + "_" +
        layout::to_string(s.array_type) + ".ppm";
    image::write_ppm(path, row);

    const double cgan_err = eval::center_error(s.resist, cgan_out);
    const double lg_err = eval::center_error(s.resist, lg_out);
    cgan_total += cgan_err;
    lg_total += lg_err;
    std::printf("%-20s %-9s (%5.1f,%5.1f) %9.2f px %9.2f px   -> %s\n",
                s.clip_id.c_str(), layout::to_string(s.array_type).c_str(),
                s.center_px.x, s.center_px.y, cgan_err, lg_err, path.c_str());
  }
  std::printf("\nmean center error: CGAN %.2f px, LithoGAN %.2f px -> %s\n",
              cgan_total / picks.size(), lg_total / picks.size(),
              lg_total <= cgan_total ? "OK (matches the paper's visual claim)"
                                     : "MISS");
  std::printf("panels: mask (RGB encoding) | CGAN | LithoGAN; golden contour in "
              "black, prediction green with red outline.\n");
  return 0;
}
